//! Open-loop traffic generation: flows arrive by a Poisson process sized
//! from a workload CDF, targeting a configured utilization of a bottleneck
//! link — the construction of the paper's testbed tool and of pFabric-style
//! simulation studies.

use crate::cdf::PiecewiseCdf;
use crate::rtt::RttVariation;
use ecnsharp_net::{FlowCmd, FlowId, NodeId};
use ecnsharp_sim::{Duration, Rate, Rng, SimTime};

/// Who talks to whom.
#[derive(Debug, Clone)]
pub enum Pattern {
    /// Every flow goes from a uniformly random sender to the single
    /// receiver (the testbed's 7→1 and the microscope's 16→1 shapes).
    /// The *receiver's downlink* is the loaded bottleneck.
    ManyToOne {
        /// Candidate senders.
        senders: Vec<NodeId>,
        /// The receiver.
        receiver: NodeId,
    },
    /// Random distinct (src, dst) pairs over the host set (the leaf-spine
    /// §5.3 setup). Load is interpreted per *edge link*.
    AllToAll {
        /// All participating hosts.
        hosts: Vec<NodeId>,
    },
}

/// A Poisson-arrival, CDF-sized traffic specification.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// Flow-size distribution.
    pub cdf: PiecewiseCdf,
    /// Target utilization of the bottleneck in `(0, 1]`.
    pub load: f64,
    /// Bottleneck capacity the load refers to.
    pub bottleneck: Rate,
    /// Communication pattern.
    pub pattern: Pattern,
    /// Base-RTT variation model; each flow's extra netem delay is
    /// `sample() − min` (the topology provides the `min` part physically).
    pub rtt: RttVariation,
    /// Service class assigned to the flows.
    pub class: u8,
    /// First flow arrival is at `start` + one inter-arrival gap.
    pub start: SimTime,
}

impl TrafficSpec {
    /// Mean flow inter-arrival time for the configured load: with mean
    /// flow size `S` bytes, `rate × load / (8·S)` flows per second arrive.
    pub fn mean_interarrival(&self) -> Duration {
        assert!(self.load > 0.0 && self.load <= 1.0, "load must be in (0,1]");
        let bytes_per_sec = self.bottleneck.as_bps() as f64 / 8.0 * self.load;
        let flows_per_sec = bytes_per_sec / self.cdf.mean();
        Duration::from_secs_f64(1.0 / flows_per_sec)
    }

    /// Generate `n_flows` scheduled flow commands with ids starting at
    /// `first_id`. Deterministic given `rng`'s state.
    pub fn generate(
        &self,
        n_flows: usize,
        first_id: u64,
        rng: &mut Rng,
    ) -> Vec<(SimTime, FlowCmd)> {
        let mean_gap = self.mean_interarrival();
        let mut t = self.start;
        let mut out = Vec::with_capacity(n_flows);
        for k in 0..n_flows {
            t += rng.exp_duration(mean_gap);
            let (src, dst) = match &self.pattern {
                Pattern::ManyToOne { senders, receiver } => (*rng.pick(senders), *receiver),
                Pattern::AllToAll { hosts } => {
                    let a = rng.below(hosts.len() as u64) as usize;
                    let mut b = rng.below(hosts.len() as u64 - 1) as usize;
                    if b >= a {
                        b += 1;
                    }
                    (hosts[a], hosts[b])
                }
            };
            let size = self.cdf.sample(rng);
            let extra = self.rtt.sample(rng).saturating_sub(self.rtt.min());
            out.push((
                t,
                FlowCmd {
                    flow: FlowId(first_id + k as u64),
                    src,
                    dst,
                    size,
                    class: self.class,
                    extra_delay: extra,
                },
            ));
        }
        out
    }
}

/// An incast query burst (§5.4): `fanout` senders each ship one small
/// response (uniform in `[min_size, max_size]`) to `receiver` at the same
/// instant.
#[derive(Debug, Clone)]
pub struct IncastSpec {
    /// Responding servers.
    pub senders: Vec<NodeId>,
    /// The aggregating receiver.
    pub receiver: NodeId,
    /// Number of concurrent responses (≤ `senders.len()`; senders are
    /// drawn round-robin if larger).
    pub fanout: usize,
    /// Smallest response size (paper: 3 KB).
    pub min_size: u64,
    /// Largest response size (paper: 60 KB).
    pub max_size: u64,
    /// When the query fires.
    pub at: SimTime,
    /// Service class.
    pub class: u8,
}

impl IncastSpec {
    /// The paper's query shape: uniform 3–60 KB responses.
    pub fn paper(senders: Vec<NodeId>, receiver: NodeId, fanout: usize, at: SimTime) -> Self {
        IncastSpec {
            senders,
            receiver,
            fanout,
            min_size: 3_000,
            max_size: 60_000,
            at,
            class: 0,
        }
    }

    /// Generate the burst's flow commands with ids starting at `first_id`.
    pub fn generate(&self, first_id: u64, rng: &mut Rng) -> Vec<(SimTime, FlowCmd)> {
        assert!(!self.senders.is_empty());
        assert!(self.min_size <= self.max_size);
        (0..self.fanout)
            .map(|k| {
                let src = self.senders[k % self.senders.len()];
                let size = rng.range_u64(self.min_size, self.max_size + 1);
                (
                    self.at,
                    FlowCmd {
                        flow: FlowId(first_id + k as u64),
                        src,
                        dst: self.receiver,
                        size,
                        class: self.class,
                        extra_delay: Duration::ZERO,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dists;

    fn spec(load: f64) -> TrafficSpec {
        TrafficSpec {
            cdf: dists::web_search(),
            load,
            bottleneck: Rate::from_gbps(10),
            pattern: Pattern::ManyToOne {
                senders: (0..7).map(NodeId).collect(),
                receiver: NodeId(7),
            },
            rtt: RttVariation::paper_3x(),
            class: 0,
            start: SimTime::ZERO,
        }
    }

    #[test]
    fn offered_load_matches_target() {
        let s = spec(0.5);
        let mut rng = Rng::seed_from_u64(1);
        let flows = s.generate(20_000, 0, &mut rng);
        let total_bytes: u64 = flows.iter().map(|(_, c)| c.size).sum();
        let horizon = flows.last().unwrap().0.as_secs_f64();
        let offered_gbps = total_bytes as f64 * 8.0 / horizon / 1e9;
        assert!(
            (offered_gbps - 5.0).abs() < 0.5,
            "offered {offered_gbps} Gbps at 50% of 10G"
        );
    }

    #[test]
    fn arrivals_strictly_ordered_and_ids_unique() {
        let s = spec(0.3);
        let mut rng = Rng::seed_from_u64(2);
        let flows = s.generate(1_000, 100, &mut rng);
        for w in flows.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1.flow.0 + 1 == w[1].1.flow.0);
        }
        assert_eq!(flows[0].1.flow, FlowId(100));
    }

    #[test]
    fn many_to_one_targets_receiver() {
        let s = spec(0.5);
        let mut rng = Rng::seed_from_u64(3);
        for (_, cmd) in s.generate(500, 0, &mut rng) {
            assert_eq!(cmd.dst, NodeId(7));
            assert!(cmd.src.0 < 7);
        }
    }

    #[test]
    fn all_to_all_never_self_talks() {
        let s = TrafficSpec {
            pattern: Pattern::AllToAll {
                hosts: (0..16).map(NodeId).collect(),
            },
            ..spec(0.4)
        };
        let mut rng = Rng::seed_from_u64(4);
        for (_, cmd) in s.generate(2_000, 0, &mut rng) {
            assert_ne!(cmd.src, cmd.dst);
        }
    }

    #[test]
    fn extra_delay_spans_variation_range() {
        let s = spec(0.5);
        let mut rng = Rng::seed_from_u64(5);
        let flows = s.generate(5_000, 0, &mut rng);
        let max_extra = flows.iter().map(|(_, c)| c.extra_delay).max().unwrap();
        let min_extra = flows.iter().map(|(_, c)| c.extra_delay).min().unwrap();
        // Stack-only flows sit essentially at the minimum base RTT.
        assert!(min_extra < Duration::from_micros(5), "{min_extra}");
        // 3x variation over 70..210: extra up to ~140 us.
        assert!(max_extra > Duration::from_micros(100), "{max_extra}");
        assert!(max_extra <= Duration::from_micros(140));
    }

    #[test]
    fn higher_load_means_denser_arrivals() {
        let lo = spec(0.1).mean_interarrival();
        let hi = spec(0.9).mean_interarrival();
        assert!(hi < lo);
        // Ratio inverse to load ratio.
        let ratio = lo.as_secs_f64() / hi.as_secs_f64();
        assert!((ratio - 9.0).abs() < 0.01, "{ratio}");
    }

    #[test]
    fn incast_burst_shape() {
        let spec = IncastSpec::paper(
            (0..16).map(NodeId).collect(),
            NodeId(16),
            100,
            SimTime::from_secs(4),
        );
        let mut rng = Rng::seed_from_u64(6);
        let flows = spec.generate(1_000, &mut rng);
        assert_eq!(flows.len(), 100);
        for (t, cmd) in &flows {
            assert_eq!(*t, SimTime::from_secs(4));
            assert!((3_000..=60_000).contains(&cmd.size));
            assert_eq!(cmd.dst, NodeId(16));
        }
        // Senders cycle round-robin over the 16 servers.
        assert_eq!(flows[0].1.src, NodeId(0));
        assert_eq!(flows[16].1.src, NodeId(0));
        assert_eq!(flows[17].1.src, NodeId(1));
    }

    #[test]
    #[should_panic(expected = "load must be in")]
    fn zero_load_rejected() {
        let _ = spec(0.0).mean_interarrival();
    }
}
