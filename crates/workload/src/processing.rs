//! The Table-1 / Figure-1 processing-delay pipeline model.
//!
//! The paper measures request-response RTTs through growing chains of
//! processing components (network stack → +SLB → +hypervisor → +load) on
//! an uncongested testbed. We reproduce the *statistics* with a stochastic
//! model: each component contributes an independent log-normal delay whose
//! mean/std are calibrated to the paper's per-case measurements. Log-normal
//! is the natural choice for processing delays (multiplicative queueing
//! effects, strictly positive, right-skewed — which is what produces the
//! paper's long p99 tails).

use ecnsharp_sim::{Duration, Rng};

/// One processing component on the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// Client+server kernel network stacks (baseline; always present).
    NetworkStack,
    /// Network stacks under CPU load (`stress` on the server VM).
    NetworkStackLoaded,
    /// Layer-4 software load balancer (LVS).
    Slb,
    /// Hypervisor / vswitch on the server.
    Hypervisor,
}

impl Component {
    /// Calibrated per-component delay (mean µs, std µs).
    ///
    /// Calibration: case 1 measures the stack alone (39.3 ± 12.2); each
    /// later case adds one component, so its marginal mean is the case-mean
    /// difference and its marginal variance the case-variance difference
    /// (independent components add in both).
    pub fn delay_params(self) -> (f64, f64) {
        match self {
            Component::NetworkStack => (39.3, 12.2),
            // Case 5 mean 105.5 = loaded stack + SLB (24.6) + hyp (30.0).
            Component::NetworkStackLoaded => (50.9, 13.0),
            // Case 2: 63.9 total ⇒ 24.6 marginal; std: sqrt(18.3²−12.2²).
            Component::Slb => (24.6, 13.6),
            // Case 3: 69.3 total ⇒ 30.0 marginal; std: sqrt(18.8²−12.2²).
            Component::Hypervisor => (30.0, 14.3),
        }
    }

    /// Sample this component's contribution to one RTT.
    pub fn sample(self, rng: &mut Rng) -> Duration {
        let (mean, std) = self.delay_params();
        Duration::from_micros_f64(rng.lognormal_mean_std(mean, std))
    }
}

/// The five Table-1 testbed cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table1Case {
    /// Case 1: network stack only.
    Stack,
    /// Case 2: stack + SLB.
    StackSlb,
    /// Case 3: stack + hypervisor.
    StackHypervisor,
    /// Case 4: stack + SLB + hypervisor.
    StackSlbHypervisor,
    /// Case 5: loaded stack + SLB + hypervisor.
    LoadedStackSlbHypervisor,
}

impl Table1Case {
    /// All five cases in table order.
    pub fn all() -> [Table1Case; 5] {
        [
            Table1Case::Stack,
            Table1Case::StackSlb,
            Table1Case::StackHypervisor,
            Table1Case::StackSlbHypervisor,
            Table1Case::LoadedStackSlbHypervisor,
        ]
    }

    /// The component chain of this case.
    pub fn components(self) -> Vec<Component> {
        use Component::*;
        match self {
            Table1Case::Stack => vec![NetworkStack],
            Table1Case::StackSlb => vec![NetworkStack, Slb],
            Table1Case::StackHypervisor => vec![NetworkStack, Hypervisor],
            Table1Case::StackSlbHypervisor => vec![NetworkStack, Slb, Hypervisor],
            Table1Case::LoadedStackSlbHypervisor => vec![NetworkStackLoaded, Slb, Hypervisor],
        }
    }

    /// Human-readable row label matching Table 1.
    pub fn label(self) -> &'static str {
        match self {
            Table1Case::Stack => "Networking Stack",
            Table1Case::StackSlb => "Networking Stack + SLB",
            Table1Case::StackHypervisor => "Networking Stack + Hypervisor",
            Table1Case::StackSlbHypervisor => "Networking Stack + SLB + Hypervisor",
            Table1Case::LoadedStackSlbHypervisor => {
                "Networking Stack(high load) + SLB + Hypervisor"
            }
        }
    }

    /// The paper's measured `(mean, std, p90, p99)` in µs, for comparison
    /// columns.
    pub fn paper_row(self) -> (f64, f64, f64, f64) {
        match self {
            Table1Case::Stack => (39.3, 12.2, 59.0, 79.0),
            Table1Case::StackSlb => (63.9, 18.3, 87.0, 121.0),
            Table1Case::StackHypervisor => (69.3, 18.8, 91.0, 130.0),
            Table1Case::StackSlbHypervisor => (99.2, 23.0, 129.0, 161.0),
            Table1Case::LoadedStackSlbHypervisor => (105.5, 23.6, 138.0, 178.0),
        }
    }

    /// Sample one request-response RTT for this case.
    pub fn sample_rtt(self, rng: &mut Rng) -> Duration {
        self.components()
            .into_iter()
            .fold(Duration::ZERO, |acc, c| acc + c.sample(rng))
    }
}

/// Summary statistics over RTT samples, matching Table 1's columns.
#[derive(Debug, Clone, Copy)]
pub struct RttSampleStats {
    /// Sample mean (µs).
    pub mean: f64,
    /// Sample standard deviation (µs).
    pub std: f64,
    /// 90th percentile (µs).
    pub p90: f64,
    /// 99th percentile (µs).
    pub p99: f64,
}

/// Run one Table-1 "experiment": `n` request-response probes.
pub fn measure_case(case: Table1Case, n: usize, rng: &mut Rng) -> RttSampleStats {
    assert!(n >= 2);
    let mut xs: Vec<f64> = (0..n)
        .map(|_| case.sample_rtt(rng).as_micros_f64())
        .collect();
    xs.sort_by(f64::total_cmp);
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    let pick = |p: f64| xs[((n as f64 - 1.0) * p) as usize];
    RttSampleStats {
        mean,
        std: var.sqrt(),
        p90: pick(0.90),
        p99: pick(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_means_track_table1() {
        let mut rng = Rng::seed_from_u64(42);
        for case in Table1Case::all() {
            let got = measure_case(case, 30_000, &mut rng);
            let (mean, _, _, _) = case.paper_row();
            let err = (got.mean - mean).abs() / mean;
            // Means must land within 7% of the measured table (case 4's
            // components interact slightly in the paper; we model them as
            // independent).
            assert!(err < 0.07, "{case:?}: got {} want {mean}", got.mean);
        }
    }

    #[test]
    fn case_stds_track_table1() {
        let mut rng = Rng::seed_from_u64(43);
        for case in Table1Case::all() {
            let got = measure_case(case, 30_000, &mut rng);
            let (_, std, _, _) = case.paper_row();
            let err = (got.std - std).abs() / std;
            assert!(err < 0.15, "{case:?}: got {} want {std}", got.std);
        }
    }

    #[test]
    fn tails_are_right_skewed() {
        let mut rng = Rng::seed_from_u64(44);
        for case in Table1Case::all() {
            let got = measure_case(case, 30_000, &mut rng);
            assert!(got.p99 > got.p90, "{case:?}");
            assert!(got.p90 > got.mean, "{case:?}");
        }
    }

    #[test]
    fn variation_factor_close_to_2_68() {
        // Table 1's headline: up to 2.68× mean-RTT variation across cases.
        let mut rng = Rng::seed_from_u64(45);
        let base = measure_case(Table1Case::Stack, 30_000, &mut rng).mean;
        let worst = measure_case(Table1Case::LoadedStackSlbHypervisor, 30_000, &mut rng).mean;
        let factor = worst / base;
        assert!((2.3..3.0).contains(&factor), "variation factor {factor}");
    }

    #[test]
    fn components_strictly_positive() {
        let mut rng = Rng::seed_from_u64(46);
        for _ in 0..10_000 {
            for c in [
                Component::NetworkStack,
                Component::Slb,
                Component::Hypervisor,
                Component::NetworkStackLoaded,
            ] {
                assert!(c.sample(&mut rng) > Duration::ZERO);
            }
        }
    }
}
