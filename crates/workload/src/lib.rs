//! # ecnsharp-workload
//!
//! Workload generation for the ECN♯ evaluation:
//!
//! - [`dists::web_search`] / [`dists::data_mining`] — the two production
//!   flow-size CDFs of Fig. 5 (DCTCP and VL2 measurements, point sets as
//!   shipped in the authors' TrafficGenerator);
//! - [`TrafficSpec`] — Poisson open-loop flow arrivals hitting a target
//!   bottleneck load, with per-flow long-tail base-RTT variation
//!   ([`RttVariation`], the netem emulation of §2.3);
//! - [`IncastSpec`] — the §5.4 query bursts (N concurrent 3–60 KB
//!   responses);
//! - [`processing`] — the Table-1 processing-component delay model
//!   (stack / SLB / hypervisor / load), for reproducing Fig. 1 and
//!   Table 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod dists;
pub mod processing;
pub mod rtt;
pub mod synth;
pub mod traffic;

pub use cdf::PiecewiseCdf;
pub use processing::{measure_case, Component, RttSampleStats, Table1Case};
pub use rtt::{RttStats, RttVariation};
pub use synth::{permutation_pairs, SizeDist};
pub use traffic::{IncastSpec, Pattern, TrafficSpec};

// Compile-time shard-safety proofs: workload generators are cloned into
// per-shard workers by the sharded engine (ROADMAP item 1). Lint rules
// R7/R8 guard the source text; these assertions guard the types.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<PiecewiseCdf>();
    assert_send_sync::<RttVariation>();
    assert_send_sync::<TrafficSpec>();
    assert_send_sync::<SizeDist>();
};
