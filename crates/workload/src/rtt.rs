//! Base-RTT variation models (§2.2–2.3).
//!
//! The paper emulates RTT variation with netem: each flow gets an extra
//! sender-side delay so base RTTs spread over `[rtt_min, rtt_max]` with a
//! long-tail shape like Figure 1 (most flows near the minimum — plain
//! network stack — and a tail of flows that traverse SLB, hypervisor, or
//! loaded components).

use ecnsharp_sim::{Duration, Rng};

/// How per-flow base RTTs are distributed over `[min, max]`.
#[derive(Debug, Clone, Copy)]
pub enum RttVariation {
    /// Every flow gets the same base RTT (no variation).
    Fixed(Duration),
    /// Uniform over `[min, max]`.
    Uniform {
        /// Smallest base RTT.
        min: Duration,
        /// Largest base RTT.
        max: Duration,
    },
    /// Long-tail mixture shaped after Figure 1: most flows near `min`
    /// (stack-only), a mid bump (one extra component: SLB *or* hypervisor),
    /// and a far tail near `max` (multiple loaded components).
    LongTail {
        /// Smallest base RTT.
        min: Duration,
        /// Largest base RTT.
        max: Duration,
    },
}

impl RttVariation {
    /// The paper's testbed default: 3× long-tail variation, 70–210 µs.
    pub fn paper_3x() -> Self {
        RttVariation::LongTail {
            min: Duration::from_micros(70),
            max: Duration::from_micros(210),
        }
    }

    /// Long-tail `n×` variation starting at 70 µs (Figures 3 and 8 sweep
    /// n = 2..5).
    pub fn paper_nx(n: u64) -> Self {
        assert!(n >= 1);
        RttVariation::LongTail {
            min: Duration::from_micros(70),
            max: Duration::from_micros(70 * n),
        }
    }

    /// The §5.3 simulation setting: 80–240 µs.
    pub fn sim_3x() -> Self {
        RttVariation::LongTail {
            min: Duration::from_micros(80),
            max: Duration::from_micros(240),
        }
    }

    /// Sample one flow's base RTT.
    pub fn sample(&self, rng: &mut Rng) -> Duration {
        match *self {
            RttVariation::Fixed(d) => d,
            RttVariation::Uniform { min, max } => {
                Duration::from_nanos(rng.range_u64(min.as_nanos(), max.as_nanos() + 1))
            }
            RttVariation::LongTail { min, max } => {
                let span = (max.as_nanos() - min.as_nanos()) as f64;
                // Mixture calibrated so that (for the 70–210 us case)
                // the average lands near 85-105 us and the 90th percentile
                // near max — matching the thresholds the paper derives
                // (RED-AVG ≈ avg RTT, RED-Tail ≈ p90 ≈ 200 us).
                let u = rng.f64();
                let frac: f64 = if u < 0.55 {
                    // Stack only: tight around the minimum.
                    (rng.normal_with(0.04, 0.03)).abs()
                } else if u < 0.70 {
                    // + SLB.
                    rng.normal_with(0.20, 0.05)
                } else if u < 0.85 {
                    // + hypervisor.
                    rng.normal_with(0.40, 0.07)
                } else {
                    // + both / loaded: the far tail.
                    rng.normal_with(0.92, 0.07)
                };
                let frac = frac.clamp(0.0, 1.0);
                Duration::from_nanos(min.as_nanos() + (frac * span).round() as u64)
            }
        }
    }

    /// The smallest RTT the model can produce.
    pub fn min(&self) -> Duration {
        match *self {
            RttVariation::Fixed(d) => d,
            RttVariation::Uniform { min, .. } | RttVariation::LongTail { min, .. } => min,
        }
    }

    /// The largest RTT the model can produce.
    pub fn max(&self) -> Duration {
        match *self {
            RttVariation::Fixed(d) => d,
            RttVariation::Uniform { max, .. } | RttVariation::LongTail { max, .. } => max,
        }
    }

    /// Monte-Carlo distribution statistics `(mean, p50, p90, p99)` with a
    /// fixed internal seed — deterministic, used by experiments to derive
    /// marking thresholds exactly the way operators would from PingMesh
    /// data.
    pub fn stats(&self) -> RttStats {
        let mut rng = Rng::seed_from_u64(0x5747_5454); // "WGTT"
        let n = 50_000;
        let mut xs: Vec<u64> = (0..n).map(|_| self.sample(&mut rng).as_nanos()).collect();
        xs.sort_unstable();
        let pick = |p: f64| Duration::from_nanos(xs[((n as f64 - 1.0) * p) as usize]);
        RttStats {
            mean: Duration::from_nanos(xs.iter().sum::<u64>() / n as u64),
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
        }
    }
}

/// Summary statistics of an RTT model.
#[derive(Debug, Clone, Copy)]
pub struct RttStats {
    /// Mean base RTT.
    pub mean: Duration,
    /// Median.
    pub p50: Duration,
    /// 90th percentile — "current practice" derives thresholds from this.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_always_same() {
        let m = RttVariation::Fixed(Duration::from_micros(100));
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), Duration::from_micros(100));
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let m = RttVariation::Uniform {
            min: Duration::from_micros(70),
            max: Duration::from_micros(210),
        };
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            let s = m.sample(&mut rng);
            assert!(s >= m.min() && s <= m.max());
        }
    }

    #[test]
    fn long_tail_3x_matches_paper_thresholds() {
        let m = RttVariation::paper_3x();
        let s = m.stats();
        // Average should be in the 85–110 us band (the paper's RED-AVG
        // threshold 80 KB ≈ 64-100 us at 10G; pst_target 85 us ≈ λ·avg).
        let mean_us = s.mean.as_micros_f64();
        assert!((80.0..115.0).contains(&mean_us), "mean {mean_us}");
        // The 90th percentile should sit near max ≈ 200-210 us, which is
        // where the paper's ins_target = 200 us comes from.
        let p90_us = s.p90.as_micros_f64();
        assert!((185.0..211.0).contains(&p90_us), "p90 {p90_us}");
        // Median well below mean: long tail.
        assert!(s.p50 < s.mean);
    }

    #[test]
    fn long_tail_within_bounds() {
        let m = RttVariation::paper_nx(5);
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..20_000 {
            let s = m.sample(&mut rng);
            assert!(s >= m.min() && s <= m.max(), "{s}");
        }
    }

    #[test]
    fn nx_scales_max() {
        assert_eq!(RttVariation::paper_nx(2).max(), Duration::from_micros(140));
        assert_eq!(RttVariation::paper_nx(5).max(), Duration::from_micros(350));
        assert_eq!(RttVariation::paper_nx(2).min(), Duration::from_micros(70));
    }

    #[test]
    fn stats_deterministic() {
        let a = RttVariation::sim_3x().stats();
        let b = RttVariation::sim_3x().stats();
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.p90, b.p90);
    }

    #[test]
    fn sim_3x_matches_section_5_3() {
        // §5.3: "The RTT has 3× variations and varies from 80us to 240us.
        // The average RTT here is ~137us and 90th percentile is ~220us."
        let s = RttVariation::sim_3x().stats();
        let mean = s.mean.as_micros_f64();
        let p90 = s.p90.as_micros_f64();
        assert!((95.0..145.0).contains(&mean), "mean {mean}");
        assert!((210.0..241.0).contains(&p90), "p90 {p90}");
    }
}
