//! Synthetic flow-size distributions beyond the two production traces —
//! useful for sensitivity studies and unit-level experiments where a
//! controlled shape beats realism.

use crate::cdf::PiecewiseCdf;
use ecnsharp_sim::Rng;

/// A flow-size sampler.
#[derive(Debug, Clone)]
pub enum SizeDist {
    /// Every flow the same size.
    Fixed(u64),
    /// Uniform over `[lo, hi]`.
    Uniform {
        /// Smallest size.
        lo: u64,
        /// Largest size.
        hi: u64,
    },
    /// Bounded Pareto (shape `alpha`, support `[lo, hi]`) — the classic
    /// heavy-tail generator.
    BoundedPareto {
        /// Smallest size.
        lo: u64,
        /// Largest size.
        hi: u64,
        /// Tail index (smaller = heavier tail).
        alpha: f64,
    },
    /// A piecewise-linear CDF (wraps the production traces).
    Cdf(PiecewiseCdf),
}

impl SizeDist {
    /// Sample one flow size in bytes.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        match self {
            SizeDist::Fixed(s) => *s,
            SizeDist::Uniform { lo, hi } => rng.range_u64(*lo, *hi + 1),
            SizeDist::BoundedPareto { lo, hi, alpha } => {
                // Inverse transform for the bounded Pareto.
                let (l, h, a) = (*lo as f64, *hi as f64, *alpha);
                let u = rng.f64();
                let la = l.powf(a);
                let ha = h.powf(a);
                let x = (-(u * (1.0 - la / ha) - 1.0) / la).powf(-1.0 / a);
                (x.round() as u64).clamp(*lo, *hi)
            }
            SizeDist::Cdf(cdf) => cdf.sample(rng),
        }
    }

    /// Analytic or estimated mean size in bytes.
    pub fn mean(&self) -> f64 {
        match self {
            SizeDist::Fixed(s) => *s as f64,
            SizeDist::Uniform { lo, hi } => (*lo + *hi) as f64 / 2.0,
            SizeDist::BoundedPareto { lo, hi, alpha } => {
                let (l, h, a) = (*lo as f64, *hi as f64, *alpha);
                if (a - 1.0).abs() < 1e-9 {
                    // α = 1: mean = ln(h/l) · l·h/(h−l)
                    (h * l) / (h - l) * (h / l).ln()
                } else {
                    (l.powf(a) / (1.0 - (l / h).powf(a)))
                        * (a / (a - 1.0))
                        * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
                }
            }
            SizeDist::Cdf(cdf) => cdf.mean(),
        }
    }
}

/// A host-permutation traffic matrix: host `i` sends only to host `π(i)`
/// for a random derangement `π` — the classic fabric stress pattern where
/// every host is both a sender and a receiver exactly once.
pub fn permutation_pairs(n_hosts: usize, rng: &mut Rng) -> Vec<(usize, usize)> {
    assert!(n_hosts >= 2);
    // Sattolo's algorithm produces a uniform cyclic permutation — a
    // derangement by construction.
    let mut p: Vec<usize> = (0..n_hosts).collect();
    for i in (1..n_hosts).rev() {
        let j = rng.below(i as u64) as usize;
        p.swap(i, j);
    }
    (0..n_hosts).map(|i| (i, p[i])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // (10 + 20) / 2 is exact in f64.
    #[allow(clippy::float_cmp)]
    fn fixed_and_uniform() {
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(SizeDist::Fixed(777).sample(&mut rng), 777);
        let u = SizeDist::Uniform { lo: 10, hi: 20 };
        for _ in 0..1000 {
            let s = u.sample(&mut rng);
            assert!((10..=20).contains(&s));
        }
        assert_eq!(u.mean(), 15.0);
    }

    #[test]
    fn bounded_pareto_heavy_tail() {
        let d = SizeDist::BoundedPareto {
            lo: 1_000,
            hi: 10_000_000,
            alpha: 1.2,
        };
        let mut rng = Rng::seed_from_u64(2);
        let n = 200_000;
        let xs: Vec<u64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| (1_000..=10_000_000).contains(&x)));
        // Median far below mean: heavy tail.
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let median = sorted[n / 2] as f64;
        let mean = xs.iter().sum::<u64>() as f64 / n as f64;
        assert!(mean > 2.0 * median, "mean {mean} median {median}");
        // Empirical mean tracks the analytic one within 5%.
        let analytic = d.mean();
        assert!(
            (mean - analytic).abs() / analytic < 0.05,
            "mean {mean} analytic {analytic}"
        );
    }

    #[test]
    fn permutation_is_derangement() {
        let mut rng = Rng::seed_from_u64(3);
        for n in [2usize, 3, 8, 33] {
            let pairs = permutation_pairs(n, &mut rng);
            assert_eq!(pairs.len(), n);
            let mut seen_dst = vec![false; n];
            for &(src, dst) in &pairs {
                assert_ne!(src, dst, "self-pair in n={n}");
                assert!(!seen_dst[dst], "duplicate receiver in n={n}");
                seen_dst[dst] = true;
            }
        }
    }

    #[test]
    fn cdf_variant_delegates() {
        let d = SizeDist::Cdf(crate::dists::web_search());
        let mut rng = Rng::seed_from_u64(4);
        let s = d.sample(&mut rng);
        assert!(s >= 1);
        assert!(d.mean() > 1_000_000.0);
    }
}
