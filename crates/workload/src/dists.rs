//! The two production workloads of the evaluation (paper Fig. 5):
//!
//! - **web search** — the flow-size distribution measured in the DCTCP
//!   paper's production cluster (Alizadeh et al., SIGCOMM'10);
//! - **data mining** — the VL2 paper's cluster (Greenberg et al.,
//!   SIGCOMM'09).
//!
//! Point sets are the ones shipped with the authors' HKUST-SING
//! TrafficGenerator (the tool the paper's testbed uses). Both are heavy
//! tailed: most flows are small, most *bytes* live in a few large flows.

use crate::cdf::PiecewiseCdf;

/// Web-search workload (DCTCP paper). Mean ≈ 1.6 MB.
pub fn web_search() -> PiecewiseCdf {
    PiecewiseCdf::new(&[
        (1.0, 0.0),
        (10_000.0, 0.15),
        (20_000.0, 0.20),
        (30_000.0, 0.30),
        (50_000.0, 0.40),
        (80_000.0, 0.53),
        (200_000.0, 0.60),
        (1_000_000.0, 0.70),
        (2_000_000.0, 0.80),
        (5_000_000.0, 0.90),
        (10_000_000.0, 0.97),
        (30_000_000.0, 1.0),
    ])
}

/// Data-mining workload (VL2 paper). Mean ≈ 7.4 MB, even heavier tail.
pub fn data_mining() -> PiecewiseCdf {
    PiecewiseCdf::new(&[
        (100.0, 0.0),
        (180.0, 0.10),
        (250.0, 0.20),
        (560.0, 0.30),
        (900.0, 0.40),
        (1_100.0, 0.50),
        (1_870.0, 0.60),
        (3_160.0, 0.70),
        (10_000.0, 0.80),
        (400_000.0, 0.90),
        (3_160_000.0, 0.95),
        (100_000_000.0, 0.98),
        (1_000_000_000.0, 1.0),
    ])
}

/// The paper's short-flow FCT bucket: `(0, 100 KB]`.
pub const SHORT_FLOW_MAX: u64 = 100_000;

/// The paper's large-flow FCT bucket: `[10 MB, ∞)`.
pub const LARGE_FLOW_MIN: u64 = 10_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn web_search_stats() {
        let c = web_search();
        let mean = c.mean();
        assert!(
            (1_400_000.0..1_800_000.0).contains(&mean),
            "web search mean {mean}"
        );
        // Heavy tail: ≥ 40% of flows are "short" (< 100 KB) but they carry
        // only a sliver of the bytes.
        assert!(c.cdf(SHORT_FLOW_MAX as f64) > 0.4);
        assert!(c.quantile(0.99) > 10_000_000.0);
    }

    #[test]
    fn data_mining_stats() {
        let c = data_mining();
        let mean = c.mean();
        // Linear interpolation over the published VL2 points puts the mean
        // in the low tens of MB — the 2% of flows between 100 MB and 1 GB
        // dominate the byte count (VL2's headline heavy tail).
        assert!(
            (8_000_000.0..16_000_000.0).contains(&mean),
            "data mining mean {mean}"
        );
        // Even more extreme: ~80% of flows under 10 KB.
        assert!(c.cdf(10_000.0) >= 0.79);
        assert!(c.quantile(0.995) > 100_000_000.0);
    }

    #[test]
    fn majority_of_flows_short_in_both() {
        for c in [web_search(), data_mining()] {
            assert!(c.cdf(SHORT_FLOW_MAX as f64) >= 0.4);
        }
    }

    #[test]
    fn data_mining_shorter_flows_than_web_search_at_median() {
        assert!(data_mining().quantile(0.5) < web_search().quantile(0.5));
    }
}
