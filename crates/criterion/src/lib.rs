//! # criterion (local benchmark-harness shim)
//!
//! A std-only, registry-free stand-in for the `criterion` crate exposing
//! the subset of its API the `ecnsharp-bench` targets use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::throughput`]/[`sample_size`](BenchmarkGroup::sample_size),
//! [`Bencher::iter`] and [`Bencher::iter_batched`].
//!
//! Unlike real criterion there is no statistical analysis: each benchmark
//! is warmed up briefly, timed for a bounded number of samples, and the
//! median ns/iteration (plus derived throughput) is printed. That is
//! enough to compare hot-path costs run-over-run while keeping the
//! workspace free of registry dependencies.
//!
//! This crate is a *host tool*: it measures wall-clock execution of the
//! benchmark body, so `std::time::Instant` is legitimate here (see lint
//! rule R1's whitelist).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// A benchmark harness measures host wall-clock time by definition; this
// crate is not sim-facing (see xtask rule R1's crate scope).
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group, mirroring criterion's.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark body processes this many logical elements.
    Elements(u64),
    /// The benchmark body processes this many bytes.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim times each
/// routine invocation individually, so the hint only exists for API
/// compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark driver handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Finalize (no-op; exists for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Annotate how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Cap the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Soft time budget (accepted for API compatibility; the shim's
    /// budget is fixed per sample count).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark and print its median timing.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples_wanted: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(&self.name, id, self.throughput);
        self
    }

    /// End the group (printing is already done per-benchmark).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark body.
pub struct Bencher {
    samples_wanted: u32,
    samples_ns: Vec<u128>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warm-up invocation, then the timed samples.
        let _ = routine();
        for _ in 0..self.samples_wanted {
            let t0 = Instant::now();
            let out = routine();
            self.samples_ns.push(t0.elapsed().as_nanos());
            drop(out);
        }
    }

    /// Time `routine` over fresh inputs from `setup`, excluding setup cost.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let _ = routine(setup());
        for _ in 0..self.samples_wanted {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.samples_ns.push(t0.elapsed().as_nanos());
            drop(out);
        }
    }

    fn report(&mut self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples_ns.is_empty() {
            println!("{id:<32} (no samples)");
            return;
        }
        self.samples_ns.sort_unstable();
        let median = self.samples_ns[self.samples_ns.len() / 2];
        // Sub-microsecond medians are clock-quantization noise; a derived
        // rate from them is meaningless (and used to print absurd numbers
        // for the cheapest AQM benches), so elide it below the floor.
        const RATE_FLOOR_NS: u128 = 1_000;
        let rate = match throughput {
            Some(Throughput::Elements(n)) if median >= RATE_FLOOR_NS => {
                format!("  {:>10.1} Melem/s", n as f64 / median as f64 * 1e3)
            }
            Some(Throughput::Bytes(n)) if median >= RATE_FLOOR_NS => {
                format!(
                    "  {:>10.1} MiB/s",
                    n as f64 / median as f64 * 1e9 / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "{id:<32} median {:>12} ns/iter ({} samples){rate}",
            median,
            self.samples_ns.len(),
        );
        self.emit_machine_line(group, id, median, throughput);
    }

    /// When `ECNSHARP_BENCH_JSON` names a file, append one JSON object per
    /// benchmark (JSON-lines) so harnesses like `cargo xtask bench` can
    /// collate results without parsing the human-readable output.
    fn emit_machine_line(
        &self,
        group: &str,
        id: &str,
        median_ns: u128,
        throughput: Option<Throughput>,
    ) {
        let Ok(path) = std::env::var("ECNSHARP_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let (elements, bytes) = match throughput {
            Some(Throughput::Elements(n)) => (n.to_string(), "null".into()),
            Some(Throughput::Bytes(n)) => ("null".into(), n.to_string()),
            None => ("null".into(), "null".to_string()),
        };
        // `min_ns` rides along for paired same-run comparisons (the
        // `bench-diff --check` zero-cost gates): co-tenant interference
        // only ever adds time, so the per-bench minimum is the stable
        // statistic on a shared box where the median can swing 30%.
        let line = format!(
            "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"samples\":{},\"elements\":{},\"bytes\":{}}}\n",
            group.escape_default(),
            id.escape_default(),
            median_ns,
            self.samples_ns.first().copied().unwrap_or(0),
            self.samples_ns.len(),
            elements,
            bytes,
        );
        use std::io::Write;
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path);
        match file {
            Ok(mut f) => {
                if let Err(e) = f.write_all(line.as_bytes()) {
                    eprintln!("warning: could not write {path}: {e}");
                }
            }
            Err(e) => eprintln!("warning: could not open {path}: {e}"),
        }
    }
}

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples_wanted: 5,
            samples_ns: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.samples_ns.len(), 5);
        assert_eq!(calls, 6, "warm-up plus samples");
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut b = Bencher {
            samples_wanted: 3,
            samples_ns: Vec::new(),
        };
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                vec![0u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 4);
        assert_eq!(b.samples_ns.len(), 3);
    }

    #[test]
    fn machine_readable_lines_when_env_set() {
        let path =
            std::env::temp_dir().join(format!("bench-json-test-{}.jsonl", std::process::id()));
        std::env::set_var("ECNSHARP_BENCH_JSON", &path);
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("mr");
        g.throughput(Throughput::Elements(100)).sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        std::env::remove_var("ECNSHARP_BENCH_JSON");
        let s = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(s.contains("\"group\":\"mr\""), "{s}");
        assert!(s.contains("\"bench\":\"noop\""), "{s}");
        assert!(s.contains("\"elements\":100"), "{s}");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-test");
        g.throughput(Throughput::Elements(10)).sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
