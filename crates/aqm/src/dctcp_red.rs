//! DCTCP-RED: the simplified RED from the DCTCP paper (Alizadeh et al.,
//! SIGCOMM'10), which the ECN♯ paper calls "current practice".
//!
//! A packet arriving at the queue is CE-marked iff the *instantaneous* queue
//! occupancy exceeds a single threshold `Kmin = Kmax = K`. No averaging, no
//! probability ramp — the cut-off behaviour is what gives DCTCP its burst
//! tolerance and 1-RTT reaction time.
//!
//! The threshold is configured from Equation 1 (`K = λ·C·RTT`). With the
//! 90th-percentile RTT this is **DCTCP-RED-Tail**; with the average RTT,
//! **DCTCP-RED-AVG** (paper §5.1). Construction helpers for both are
//! provided.

use crate::{
    admit_mark_or_drop, params, Aqm, DequeueVerdict, EnqueueVerdict, PacketView, QueueState,
};
use ecnsharp_sim::{Duration, Rate, SimTime};

/// Instantaneous single-threshold ECN marking on queue length.
#[derive(Debug, Clone)]
pub struct DctcpRed {
    /// Marking threshold `K` in bytes.
    k_bytes: u64,
    /// Display name (distinguishes the -Tail and -AVG configurations in
    /// reports).
    name: &'static str,
}

impl DctcpRed {
    /// Create with an explicit threshold in bytes.
    pub fn with_threshold(k_bytes: u64) -> Self {
        DctcpRed {
            k_bytes,
            name: "DCTCP-RED",
        }
    }

    /// "Current practice": derive `K` from a high-percentile RTT (Eq. 1).
    pub fn tail(lambda: f64, capacity: Rate, rtt_high_pct: Duration) -> Self {
        DctcpRed {
            k_bytes: params::queue_threshold(lambda, capacity, rtt_high_pct),
            name: "DCTCP-RED-Tail",
        }
    }

    /// The low-threshold alternative: derive `K` from the average RTT.
    pub fn avg(lambda: f64, capacity: Rate, rtt_avg: Duration) -> Self {
        DctcpRed {
            k_bytes: params::queue_threshold(lambda, capacity, rtt_avg),
            name: "DCTCP-RED-AVG",
        }
    }

    /// Override the display name (scenario builders label variants).
    pub fn named(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// The configured threshold in bytes.
    pub fn threshold(&self) -> u64 {
        self.k_bytes
    }
}

impl Aqm for DctcpRed {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_enqueue(&mut self, _now: SimTime, q: &QueueState, pkt: &PacketView) -> EnqueueVerdict {
        // Instantaneous occupancy check: queue length *including* the
        // arriving packet, matching the ns-3/DCTCP convention where the
        // packet that pushes the queue past K is the first one marked.
        if q.backlog_bytes + pkt.bytes > self.k_bytes {
            admit_mark_or_drop(pkt.ect)
        } else {
            EnqueueVerdict::Admit
        }
    }

    fn on_dequeue(&mut self, _now: SimTime, _q: &QueueState, _pkt: &PacketView) -> DequeueVerdict {
        DequeueVerdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{pkt, pkt_nonect, q};

    #[test]
    fn marks_above_threshold_only() {
        let mut red = DctcpRed::with_threshold(100_000);
        let now = SimTime::from_micros(1);
        assert_eq!(red.on_enqueue(now, &q(0), &pkt(0)), EnqueueVerdict::Admit);
        assert_eq!(
            red.on_enqueue(now, &q(98_500), &pkt(0)),
            EnqueueVerdict::Admit,
            "exactly at K is not above"
        );
        assert_eq!(
            red.on_enqueue(now, &q(98_501), &pkt(0)),
            EnqueueVerdict::AdmitMark
        );
        assert_eq!(
            red.on_enqueue(now, &q(500_000), &pkt(0)),
            EnqueueVerdict::AdmitMark
        );
    }

    #[test]
    fn non_ect_dropped_instead_of_marked() {
        let mut red = DctcpRed::with_threshold(10_000);
        assert_eq!(
            red.on_enqueue(SimTime::ZERO, &q(50_000), &pkt_nonect(0)),
            EnqueueVerdict::Drop
        );
    }

    #[test]
    fn dequeue_never_acts() {
        let mut red = DctcpRed::with_threshold(0);
        assert_eq!(
            red.on_dequeue(SimTime::from_millis(1), &q(1_000_000), &pkt(0)),
            DequeueVerdict::Pass
        );
    }

    #[test]
    fn tail_and_avg_constructors() {
        let c = Rate::from_gbps(10);
        let tail = DctcpRed::tail(1.0, c, Duration::from_micros(200));
        assert_eq!(tail.threshold(), 250_000);
        assert_eq!(tail.name(), "DCTCP-RED-Tail");
        let avg = DctcpRed::avg(1.0, c, Duration::from_micros(100));
        assert_eq!(avg.threshold(), 125_000);
        assert_eq!(avg.name(), "DCTCP-RED-AVG");
        assert!(avg.threshold() < tail.threshold());
    }

    #[test]
    fn marking_is_stateless() {
        // Same inputs, same verdict, regardless of history.
        let mut red = DctcpRed::with_threshold(50_000);
        let v1 = red.on_enqueue(SimTime::ZERO, &q(60_000), &pkt(0));
        for _ in 0..10 {
            red.on_enqueue(SimTime::ZERO, &q(0), &pkt(0));
        }
        let v2 = red.on_enqueue(SimTime::ZERO, &q(60_000), &pkt(0));
        assert_eq!(v1, v2);
    }
}
