//! Plain tail-drop "AQM": never marks, never early-drops. The port's
//! capacity check provides the tail-drop behaviour; this policy simply
//! declines to add anything on top. Useful as the null baseline and for
//! host NIC queues.

use crate::{Aqm, DequeueVerdict, EnqueueVerdict, PacketView, QueueState};
use ecnsharp_sim::SimTime;

/// The do-nothing queue policy.
#[derive(Debug, Default, Clone, Copy)]
pub struct DropTail;

impl DropTail {
    /// Create a tail-drop policy.
    pub fn new() -> Self {
        DropTail
    }
}

impl Aqm for DropTail {
    fn name(&self) -> &'static str {
        "DropTail"
    }

    fn on_enqueue(&mut self, _now: SimTime, _q: &QueueState, _pkt: &PacketView) -> EnqueueVerdict {
        EnqueueVerdict::Admit
    }

    fn on_dequeue(&mut self, _now: SimTime, _q: &QueueState, _pkt: &PacketView) -> DequeueVerdict {
        DequeueVerdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{pkt, q};

    #[test]
    fn never_interferes() {
        let mut dt = DropTail::new();
        for backlog in [0u64, 10_000, 1_999_999] {
            assert_eq!(
                dt.on_enqueue(SimTime::from_micros(1), &q(backlog), &pkt(0)),
                EnqueueVerdict::Admit
            );
            assert_eq!(
                dt.on_dequeue(SimTime::from_micros(1_000), &q(backlog), &pkt(0)),
                DequeueVerdict::Pass
            );
        }
    }
}
