//! CoDel — "Controlling Queue Delay" (Nichols & Jacobson, ACM Queue 2012 /
//! RFC 8289) — operated in ECN-marking mode, as the paper deploys it on the
//! Tofino testbed (§5.1: "we implement CoDel on Barefoot Tofino to perform
//! ECN marking").
//!
//! CoDel tracks whether the packet sojourn time has remained above `target`
//! for a full `interval`; once it has, it enters the *dropping* (here:
//! marking) state and signals one packet per control-law interval
//! `interval / sqrt(count)`. CoDel reacts **only** to persistent congestion
//! — it has no instantaneous component — which is exactly why the paper
//! finds it fragile under incast bursts (§5.4): nothing tames the first
//! flight of a burst, so the buffer overflows and packets are lost.

use crate::{mark_or_drop, Aqm, DequeueVerdict, EnqueueVerdict, PacketView, QueueState};
use ecnsharp_sim::{Duration, SimTime};

/// CoDel AQM (marking or dropping mode).
#[derive(Debug, Clone)]
pub struct CoDel {
    target: Duration,
    interval: Duration,
    /// `true`: CE-mark ECT packets (the paper's Tofino deployment);
    /// `false`: drop on every control-law signal (classic CoDel and the
    /// ns-3 queue disc the paper's simulations use).
    ecn_mode: bool,
    /// When the sojourn time first went above `target` (None = not above).
    first_above_time: Option<SimTime>,
    /// Are we in the dropping/marking state?
    dropping: bool,
    /// Next time to signal while in the dropping state.
    drop_next: SimTime,
    /// Signals sent in the current dropping episode.
    count: u64,
    /// `count` when we left the dropping state (for the count-reuse rule).
    last_count: u64,
}

impl CoDel {
    /// Create with the given `target` sojourn time and control `interval`.
    /// The canonical Internet defaults are 5 ms / 100 ms; datacenter
    /// deployments scale both down (the paper uses 85 µs / 200 µs).
    pub fn new(target: Duration, interval: Duration) -> Self {
        assert!(!interval.is_zero(), "CoDel interval must be positive");
        CoDel {
            target,
            interval,
            ecn_mode: true,
            first_above_time: None,
            dropping: false,
            drop_next: SimTime::ZERO,
            count: 0,
            last_count: 0,
        }
    }

    /// Classic dropping CoDel (the ns-3 queue-disc behaviour the paper's
    /// simulations compare against): every control-law signal discards the
    /// packet instead of marking it.
    pub fn new_dropping(target: Duration, interval: Duration) -> Self {
        CoDel {
            ecn_mode: false,
            ..CoDel::new(target, interval)
        }
    }

    /// Whether this instance marks (true) or drops (false).
    pub fn is_ecn_mode(&self) -> bool {
        self.ecn_mode
    }

    /// The configured target.
    pub fn target(&self) -> Duration {
        self.target
    }

    /// The configured interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Whether the control law is currently in its marking state.
    pub fn in_dropping_state(&self) -> bool {
        self.dropping
    }

    /// The RFC 8289 `control_law`: time of the next signal.
    fn control_law(&self, t: SimTime) -> SimTime {
        t + self.interval.div_f64((self.count.max(1) as f64).sqrt())
    }

    /// Resolve a control-law signal per the configured mode.
    fn signal(&self, pkt: &PacketView) -> DequeueVerdict {
        if self.ecn_mode {
            mark_or_drop(pkt.ect)
        } else {
            DequeueVerdict::Drop
        }
    }

    /// Should the state machine consider signalling? Mirrors RFC 8289
    /// `dodeque`: track the first time sojourn went above target and report
    /// `true` once it has stayed there for one full interval.
    fn ok_to_signal(&mut self, now: SimTime, q: &QueueState, sojourn: Duration) -> bool {
        if sojourn < self.target || q.backlog_bytes <= q.drain_rate.bytes_in(self.target).min(1514)
        {
            // Below target (or queue nearly empty): forget the episode.
            self.first_above_time = None;
            return false;
        }
        match self.first_above_time {
            None => {
                self.first_above_time = Some(now + self.interval);
                false
            }
            Some(fat) => now >= fat,
        }
    }
}

impl Aqm for CoDel {
    fn name(&self) -> &'static str {
        "CoDel"
    }

    fn on_enqueue(&mut self, _now: SimTime, _q: &QueueState, _pkt: &PacketView) -> EnqueueVerdict {
        EnqueueVerdict::Admit
    }

    fn on_dequeue(&mut self, now: SimTime, q: &QueueState, pkt: &PacketView) -> DequeueVerdict {
        let sojourn = pkt.sojourn(now);
        let ok = self.ok_to_signal(now, q, sojourn);

        if self.dropping {
            if !ok {
                self.dropping = false;
                self.last_count = self.count;
                return DequeueVerdict::Pass;
            }
            if now >= self.drop_next {
                self.count += 1;
                self.drop_next = self.control_law(self.drop_next);
                return self.signal(pkt);
            }
            DequeueVerdict::Pass
        } else if ok {
            self.dropping = true;
            // Count reuse (RFC 8289 §5.4): if we re-enter soon after the
            // last episode, resume near the old signalling rate instead of
            // starting over.
            let recently = now.saturating_since(self.drop_next) < self.interval * 16;
            self.count = if recently && self.last_count > 2 {
                self.last_count - 2
            } else {
                1
            };
            self.drop_next = self.control_law(now);
            self.signal(pkt)
        } else {
            DequeueVerdict::Pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{pkt_nonect, q};
    use crate::PacketView;

    const TARGET_US: u64 = 85;
    const INTERVAL_US: u64 = 200;

    fn codel() -> CoDel {
        CoDel::new(
            Duration::from_micros(TARGET_US),
            Duration::from_micros(INTERVAL_US),
        )
    }

    /// A packet dequeued at `now_us` whose sojourn is `soj_us`.
    fn deq(c: &mut CoDel, now_us: u64, soj_us: u64, backlog: u64) -> DequeueVerdict {
        let p = PacketView {
            bytes: 1500,
            ect: true,
            enqueued_at: SimTime::from_micros(now_us - soj_us),
        };
        c.on_dequeue(SimTime::from_micros(now_us), &q(backlog), &p)
    }

    #[test]
    fn no_marks_below_target() {
        let mut c = codel();
        for t in (0..10_000).step_by(10) {
            assert_eq!(deq(&mut c, t + 50, 50, 100_000), DequeueVerdict::Pass);
        }
        assert!(!c.in_dropping_state());
    }

    #[test]
    fn first_mark_only_after_full_interval_above_target() {
        let mut c = codel();
        // sojourn 120 us > target from t=1000 us on
        assert_eq!(deq(&mut c, 1_000, 120, 100_000), DequeueVerdict::Pass);
        // Still within the interval: no mark.
        assert_eq!(deq(&mut c, 1_100, 120, 100_000), DequeueVerdict::Pass);
        assert_eq!(deq(&mut c, 1_199, 120, 100_000), DequeueVerdict::Pass);
        // One full interval elapsed: mark.
        assert_eq!(deq(&mut c, 1_200, 120, 100_000), DequeueVerdict::Mark);
        assert!(c.in_dropping_state());
    }

    #[test]
    fn dip_below_target_resets_episode() {
        let mut c = codel();
        assert_eq!(deq(&mut c, 1_000, 120, 100_000), DequeueVerdict::Pass);
        // Sojourn dips below target: episode forgotten.
        assert_eq!(deq(&mut c, 1_100, 10, 100_000), DequeueVerdict::Pass);
        // Above target again; clock restarts, so t=1300 (only 100us since
        // restart) must not mark.
        assert_eq!(deq(&mut c, 1_200, 120, 100_000), DequeueVerdict::Pass);
        assert_eq!(deq(&mut c, 1_300, 120, 100_000), DequeueVerdict::Pass);
        assert_eq!(deq(&mut c, 1_400, 120, 100_000), DequeueVerdict::Mark);
    }

    #[test]
    fn marking_rate_accelerates() {
        let mut c = codel();
        // Enter dropping state.
        deq(&mut c, 1_000, 120, 100_000);
        assert_eq!(deq(&mut c, 1_200, 120, 100_000), DequeueVerdict::Mark);
        // Sweep time forward with persistently high sojourn and record marks.
        let mut mark_times = vec![];
        for t in (1_201..4_000).step_by(2) {
            if deq(&mut c, t, 120, 100_000) == DequeueVerdict::Mark {
                mark_times.push(t);
            }
        }
        assert!(mark_times.len() >= 3, "marks: {mark_times:?}");
        // Inter-mark gaps shrink (interval / sqrt(count)).
        let gaps: Vec<i64> = mark_times
            .windows(2)
            .map(|w| (w[1] - w[0]) as i64)
            .collect();
        for pair in gaps.windows(2) {
            assert!(pair[1] <= pair[0] + 2, "gaps should shrink: {gaps:?}");
        }
    }

    #[test]
    fn leaves_dropping_state_when_queue_drains() {
        let mut c = codel();
        deq(&mut c, 1_000, 120, 100_000);
        assert_eq!(deq(&mut c, 1_200, 120, 100_000), DequeueVerdict::Mark);
        assert!(c.in_dropping_state());
        // Sojourn falls below target.
        assert_eq!(deq(&mut c, 1_300, 5, 100_000), DequeueVerdict::Pass);
        assert!(!c.in_dropping_state());
    }

    #[test]
    fn non_ect_packets_get_dropped() {
        let mut c = codel();
        deq(&mut c, 1_000, 120, 100_000);
        deq(&mut c, 1_150, 120, 100_000);
        let p = pkt_nonect(1_200 - 120);
        let v = c.on_dequeue(SimTime::from_micros(1_200), &q(100_000), &p);
        assert_eq!(v, DequeueVerdict::Drop);
    }

    #[test]
    fn tiny_backlog_suppresses_signalling() {
        // With less than one MTU queued, CoDel must stay quiet even if the
        // sojourn number looks large (RFC 8289's maxpacket clause).
        let mut c = codel();
        for t in (1_000..5_000).step_by(100) {
            assert_eq!(deq(&mut c, t, 500, 1_000), DequeueVerdict::Pass);
        }
    }

    #[test]
    fn count_reuse_on_quick_reentry() {
        let mut c = codel();
        // Build up an episode with several marks.
        deq(&mut c, 1_000, 120, 100_000);
        deq(&mut c, 1_200, 120, 100_000); // mark #1
        let mut marks = 1;
        let mut t = 1_201;
        while marks < 6 && t < 10_000 {
            if deq(&mut c, t, 120, 100_000) == DequeueVerdict::Mark {
                marks += 1;
            }
            t += 1;
        }
        assert_eq!(marks, 6);
        // Exit and quickly re-enter: first mark of the new episode should
        // come with count > 1 (faster follow-up marking).
        deq(&mut c, t, 5, 100_000); // exits dropping
        deq(&mut c, t + 10, 120, 100_000); // restarts above-target clock
        let v = deq(&mut c, t + 10 + INTERVAL_US, 120, 100_000);
        assert_eq!(v, DequeueVerdict::Mark);
        assert!(c.count > 1, "count reused, got {}", c.count);
    }

    #[test]
    fn dropping_mode_drops_ect_packets() {
        let mut c = CoDel::new_dropping(
            Duration::from_micros(TARGET_US),
            Duration::from_micros(INTERVAL_US),
        );
        assert!(!c.is_ecn_mode());
        deq(&mut c, 1_000, 120, 100_000);
        // ECT packet still gets dropped, not marked, in drop mode.
        assert_eq!(deq(&mut c, 1_200, 120, 100_000), DequeueVerdict::Drop);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = CoDel::new(Duration::from_micros(10), Duration::ZERO);
    }
}
