//! Classic RED (Floyd & Jacobson 1993) operated as an ECN marker.
//!
//! Unlike [`crate::DctcpRed`], classic RED keeps an EWMA *average* queue
//! length and marks probabilistically between `min_th` and `max_th` with a
//! ramp up to `max_p`, using the standard `count`-based spreading so marks
//! are roughly uniform in packet arrivals. This is the probabilistic marking
//! style DCQCN requires (paper §3.5), included as the probabilistic
//! comparator and extension point.

use crate::{admit_mark_or_drop, Aqm, DequeueVerdict, EnqueueVerdict, PacketView, QueueState};
use ecnsharp_sim::{Rng, SimTime};

/// Configuration for classic RED.
#[derive(Debug, Clone, Copy)]
pub struct RedConfig {
    /// Lower threshold on the average queue (bytes): below it, never mark.
    pub min_th: u64,
    /// Upper threshold (bytes): above it, always mark.
    pub max_th: u64,
    /// Marking probability at `max_th`.
    pub max_p: f64,
    /// EWMA weight for the average queue estimate.
    pub weight: f64,
    /// Mean packet size used for the idle-time decay (bytes).
    pub mean_pkt: u64,
}

impl Default for RedConfig {
    fn default() -> Self {
        RedConfig {
            min_th: 50_000,
            max_th: 150_000,
            max_p: 0.1,
            weight: 0.002,
            mean_pkt: 1_500,
        }
    }
}

/// Classic probabilistic RED in ECN-marking mode.
pub struct Red {
    cfg: RedConfig,
    avg: f64,
    /// Packets since the last mark (for uniformization).
    count: i64,
    /// When the queue went idle (for EWMA decay), if it is idle.
    idle_since: Option<SimTime>,
    rng: Rng,
}

impl Red {
    /// Create from a config with a deterministic seed for the marking dice.
    pub fn new(cfg: RedConfig, seed: u64) -> Self {
        assert!(cfg.min_th < cfg.max_th, "RED needs min_th < max_th");
        assert!(cfg.max_p > 0.0 && cfg.max_p <= 1.0);
        assert!(cfg.weight > 0.0 && cfg.weight <= 1.0);
        Red {
            cfg,
            avg: 0.0,
            count: -1,
            idle_since: Some(SimTime::ZERO),
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Current average-queue estimate in bytes.
    pub fn avg_queue(&self) -> f64 {
        self.avg
    }

    fn update_avg(&mut self, now: SimTime, backlog: u64) {
        if backlog == 0 && self.idle_since.is_none() {
            self.idle_since = Some(now);
        }
        if let Some(idle_start) = self.idle_since {
            // While idle the average decays as if `m` small packets had
            // departed: avg *= (1-w)^m (Floyd & Jacobson §4).
            let idle = now.saturating_since(idle_start);
            let tx = self.cfg.drain_time_hint();
            let m = (idle.as_secs_f64() / tx).floor();
            if m > 0.0 {
                self.avg *= (1.0 - self.cfg.weight).powf(m.min(1e6));
            }
            self.idle_since = None;
        }
        self.avg += self.cfg.weight * (backlog as f64 - self.avg);
    }
}

impl RedConfig {
    /// Seconds to transmit one mean packet at 10 Gbps — used only for the
    /// idle decay granularity; RED is insensitive to its exact value.
    fn drain_time_hint(&self) -> f64 {
        (self.mean_pkt * 8) as f64 / 10e9
    }
}

impl Aqm for Red {
    fn name(&self) -> &'static str {
        "RED"
    }

    fn on_enqueue(&mut self, now: SimTime, q: &QueueState, pkt: &PacketView) -> EnqueueVerdict {
        self.update_avg(now, q.backlog_bytes);
        if q.backlog_bytes == 0 {
            self.idle_since = Some(now);
        } else {
            self.idle_since = None;
        }

        let avg = self.avg;
        if avg < self.cfg.min_th as f64 {
            self.count = -1;
            return EnqueueVerdict::Admit;
        }
        if avg >= self.cfg.max_th as f64 {
            self.count = 0;
            return admit_mark_or_drop(pkt.ect);
        }
        self.count += 1;
        let pb = self.cfg.max_p * (avg - self.cfg.min_th as f64)
            / (self.cfg.max_th - self.cfg.min_th) as f64;
        let pa = (pb / (1.0 - (self.count as f64) * pb).max(1e-9)).clamp(0.0, 1.0);
        if self.rng.chance(pa) {
            self.count = 0;
            admit_mark_or_drop(pkt.ect)
        } else {
            EnqueueVerdict::Admit
        }
    }

    fn on_dequeue(&mut self, _now: SimTime, _q: &QueueState, _pkt: &PacketView) -> DequeueVerdict {
        DequeueVerdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{pkt, q};

    fn red() -> Red {
        Red::new(RedConfig::default(), 1)
    }

    #[test]
    fn no_marks_below_min_th() {
        let mut r = red();
        let mut marked = 0;
        for i in 0..10_000u64 {
            let v = r.on_enqueue(SimTime::from_micros(i), &q(10_000), &pkt(0));
            if v != EnqueueVerdict::Admit {
                marked += 1;
            }
        }
        assert_eq!(marked, 0, "avg stays below min_th, no marks");
    }

    #[test]
    fn always_marks_when_avg_above_max_th() {
        let mut r = red();
        // Saturate the average well above max_th.
        for i in 0..20_000u64 {
            r.on_enqueue(SimTime::from_micros(i), &q(1_000_000), &pkt(0));
        }
        assert!(r.avg_queue() > 150_000.0);
        let v = r.on_enqueue(SimTime::from_micros(20_001), &q(1_000_000), &pkt(0));
        assert_eq!(v, EnqueueVerdict::AdmitMark);
    }

    #[test]
    fn marks_probabilistically_between_thresholds() {
        let mut r = red();
        // Drive avg to ~100 KB (midway): expect a marking fraction well
        // between 0 and 1 over many packets.
        for i in 0..50_000u64 {
            r.on_enqueue(SimTime::from_micros(i), &q(100_000), &pkt(0));
        }
        let mut marked = 0;
        let n = 20_000;
        for i in 0..n {
            let v = r.on_enqueue(SimTime::from_micros(50_000 + i), &q(100_000), &pkt(0));
            if v == EnqueueVerdict::AdmitMark {
                marked += 1;
            }
        }
        let frac = marked as f64 / n as f64;
        assert!(frac > 0.01 && frac < 0.5, "marking fraction {frac}");
    }

    #[test]
    fn ewma_tracks_slowly() {
        let mut r = red();
        r.on_enqueue(SimTime::ZERO, &q(150_000), &pkt(0));
        // One sample moves the average only by weight * q.
        assert!(r.avg_queue() < 1_000.0);
    }

    #[test]
    fn idle_decay_reduces_avg() {
        let mut r = red();
        for i in 0..20_000u64 {
            r.on_enqueue(SimTime::from_micros(i), &q(200_000), &pkt(0));
        }
        let before = r.avg_queue();
        // Queue empties; next arrival comes 10 ms later.
        r.on_enqueue(SimTime::from_micros(20_000), &q(0), &pkt(0));
        r.on_enqueue(SimTime::from_micros(30_000), &q(0), &pkt(0));
        assert!(
            r.avg_queue() < before * 0.2,
            "avg {} should decay from {before}",
            r.avg_queue()
        );
    }

    #[test]
    #[should_panic(expected = "min_th < max_th")]
    fn rejects_inverted_thresholds() {
        let _ = Red::new(
            RedConfig {
                min_th: 10,
                max_th: 10,
                ..RedConfig::default()
            },
            0,
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut r = Red::new(RedConfig::default(), seed);
            (0..5_000u64)
                .map(|i| {
                    (r.on_enqueue(SimTime::from_micros(i), &q(120_000), &pkt(0))
                        == EnqueueVerdict::AdmitMark) as u32
                })
                .sum::<u32>()
        };
        assert_eq!(run(7), run(7));
    }
}
