//! TCN — "Enabling ECN over Generic Packet Scheduling" (Bai et al.,
//! CoNEXT 2016).
//!
//! TCN marks a packet at dequeue iff its *instantaneous sojourn time*
//! exceeds a single threshold (Eq. 2's `T = λ × RTT`). Using sojourn time
//! instead of queue length makes the scheme oblivious to how the scheduler
//! splits the port's capacity across queues. TCN is pure instantaneous
//! marking: under RTT variations it inherits the §2.3 dilemma — a
//! high-percentile threshold lets small-RTT flows build persistent queues,
//! which is precisely the gap ECN♯ closes.

use crate::{mark_or_drop, params, Aqm, DequeueVerdict, EnqueueVerdict, PacketView, QueueState};
use ecnsharp_sim::{Duration, SimTime};

/// Instantaneous sojourn-time threshold marking.
#[derive(Debug, Clone)]
pub struct Tcn {
    threshold: Duration,
}

impl Tcn {
    /// Create with an explicit sojourn-time threshold.
    pub fn new(threshold: Duration) -> Self {
        Tcn { threshold }
    }

    /// Derive the threshold from Equation 2 (`T = λ × RTT`).
    pub fn from_rtt(lambda: f64, rtt: Duration) -> Self {
        Tcn {
            threshold: params::sojourn_threshold(lambda, rtt),
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }
}

impl Aqm for Tcn {
    fn name(&self) -> &'static str {
        "TCN"
    }

    fn on_enqueue(&mut self, _now: SimTime, _q: &QueueState, _pkt: &PacketView) -> EnqueueVerdict {
        EnqueueVerdict::Admit
    }

    fn on_dequeue(&mut self, now: SimTime, _q: &QueueState, pkt: &PacketView) -> DequeueVerdict {
        if pkt.sojourn(now) > self.threshold {
            mark_or_drop(pkt.ect)
        } else {
            DequeueVerdict::Pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{pkt, pkt_nonect, q};

    #[test]
    fn marks_strictly_above_threshold() {
        let mut t = Tcn::new(Duration::from_micros(150));
        // Sojourn 150 us exactly: not above.
        assert_eq!(
            t.on_dequeue(SimTime::from_micros(150), &q(10_000), &pkt(0)),
            DequeueVerdict::Pass
        );
        // Sojourn 151 us: mark.
        assert_eq!(
            t.on_dequeue(SimTime::from_micros(151), &q(10_000), &pkt(0)),
            DequeueVerdict::Mark
        );
    }

    #[test]
    fn stateless_across_packets() {
        let mut t = Tcn::new(Duration::from_micros(100));
        for _ in 0..100 {
            assert_eq!(
                t.on_dequeue(SimTime::from_micros(500), &q(0), &pkt(0)),
                DequeueVerdict::Mark
            );
            assert_eq!(
                t.on_dequeue(SimTime::from_micros(500), &q(0), &pkt(450)),
                DequeueVerdict::Pass
            );
        }
    }

    #[test]
    fn non_ect_dropped() {
        let mut t = Tcn::new(Duration::from_micros(10));
        assert_eq!(
            t.on_dequeue(SimTime::from_micros(100), &q(0), &pkt_nonect(0)),
            DequeueVerdict::Drop
        );
    }

    #[test]
    fn from_rtt_uses_eq2() {
        let t = Tcn::from_rtt(1.0, Duration::from_micros(150));
        assert_eq!(t.threshold(), Duration::from_micros(150));
        let t = Tcn::from_rtt(0.17, Duration::from_micros(100));
        assert_eq!(t.threshold(), Duration::from_micros(17));
    }

    #[test]
    fn never_acts_on_enqueue() {
        let mut t = Tcn::new(Duration::ZERO);
        assert_eq!(
            t.on_enqueue(SimTime::from_micros(9), &q(1_000_000), &pkt(0)),
            EnqueueVerdict::Admit
        );
    }
}
