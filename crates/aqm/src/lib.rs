//! # ecnsharp-aqm
//!
//! The active-queue-management abstraction used by every switch egress port
//! in the simulator, plus the baseline schemes the paper compares against:
//!
//! - [`DropTail`] — no marking at all (pure tail-drop, enforced by the port);
//! - [`DctcpRed`] — the DCTCP paper's simplified RED: instantaneous queue
//!   length against a single threshold `Kmin = Kmax = K` ("current practice"
//!   when `K` is derived from a high-percentile RTT);
//! - [`Red`] — classic Floyd/Jacobson RED with an EWMA average queue and a
//!   probabilistic marking ramp between `Kmin` and `Kmax` (the DCQCN-style
//!   marking discussed in §3.5);
//! - [`CoDel`] — Controlling Queue Delay (Nichols & Jacobson) operated in
//!   ECN-marking mode, the persistent-congestion-only comparator;
//! - [`Tcn`] — TCN (CoNEXT'16): instantaneous *sojourn time* against a single
//!   threshold, the scheduler-agnostic instantaneous-marking comparator;
//! - [`Pie`] — PIE (RFC 8033, simplified): proportional-integral controller
//!   on queueing latency (related-work extension).
//!
//! ECN♯ itself lives in `ecnsharp-core` and implements the same [`Aqm`]
//! trait, as does the Tofino match-action pipeline in `ecnsharp-tofino`.
//!
//! ## Hook points
//!
//! An AQM sees every packet twice:
//!
//! 1. [`Aqm::on_enqueue`] — when the packet is admitted to the queue (after
//!    the port's tail-drop capacity check). Queue-length schemes (DCTCP-RED,
//!    RED, PIE) decide here.
//! 2. [`Aqm::on_dequeue`] — when the packet starts transmission, which is
//!    the first moment its sojourn time is known. Sojourn-time schemes
//!    (CoDel, TCN, ECN♯) decide here; this is also what makes them work
//!    unchanged underneath multi-queue packet schedulers (§5.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codel;
pub mod dctcp_red;
pub mod droptail;
pub mod params;
pub mod pie;
pub mod red;
pub mod tcn;

pub use codel::CoDel;
pub use dctcp_red::DctcpRed;
pub use droptail::DropTail;
pub use pie::{Pie, PieConfig};
pub use red::{Red, RedConfig};
pub use tcn::Tcn;

use ecnsharp_sim::{Duration, Rate, SimTime};

/// The AQM-visible view of a packet.
#[derive(Debug, Clone, Copy)]
pub struct PacketView {
    /// Wire size of the packet in bytes (headers included).
    pub bytes: u64,
    /// Whether the packet is ECN-capable (ECT codepoint). A "mark" decision
    /// on a non-ECT packet degrades to a drop, per RFC 3168.
    pub ect: bool,
    /// When the packet was enqueued at this port; `on_dequeue` derives the
    /// sojourn time from it.
    pub enqueued_at: SimTime,
}

impl PacketView {
    /// Sojourn time of this packet as of `now` (zero if clocks disagree).
    #[inline]
    pub fn sojourn(&self, now: SimTime) -> Duration {
        now.saturating_since(self.enqueued_at)
    }
}

/// The AQM-visible state of the egress queue the packet belongs to.
#[derive(Debug, Clone, Copy)]
pub struct QueueState {
    /// Bytes currently queued (excluding the packet being decided on).
    pub backlog_bytes: u64,
    /// Packets currently queued (excluding the packet being decided on).
    pub backlog_pkts: u64,
    /// Configured buffer capacity of the port in bytes.
    pub capacity_bytes: u64,
    /// Drain rate of the port (the link rate).
    pub drain_rate: Rate,
}

/// Decision taken when a packet is admitted to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueVerdict {
    /// Admit unmodified.
    Admit,
    /// Admit and set the CE codepoint.
    AdmitMark,
    /// Refuse the packet (early drop).
    Drop,
}

/// Decision taken when a packet leaves the queue for transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DequeueVerdict {
    /// Transmit unmodified.
    Pass,
    /// Set the CE codepoint and transmit.
    Mark,
    /// Discard instead of transmitting (CoDel's behaviour for non-ECT
    /// traffic).
    Drop,
}

/// Resolve a "this packet should be signalled" decision against the packet's
/// ECN capability: ECT packets get marked, others dropped.
#[inline]
pub fn mark_or_drop(ect: bool) -> DequeueVerdict {
    if ect {
        DequeueVerdict::Mark
    } else {
        DequeueVerdict::Drop
    }
}

/// Resolve the same decision at enqueue time.
#[inline]
pub fn admit_mark_or_drop(ect: bool) -> EnqueueVerdict {
    if ect {
        EnqueueVerdict::AdmitMark
    } else {
        EnqueueVerdict::Drop
    }
}

/// An active queue management policy attached to one egress port.
///
/// Implementations must be deterministic given the call sequence (any
/// randomness must come from state seeded at construction) so that whole
/// simulations replay bit-identically.
pub trait Aqm: Send {
    /// Human-readable scheme name for reports.
    fn name(&self) -> &'static str;

    /// Called when `pkt` is admitted to the queue. `q` describes the queue
    /// *before* this packet is added.
    fn on_enqueue(&mut self, now: SimTime, q: &QueueState, pkt: &PacketView) -> EnqueueVerdict {
        let _ = (now, q, pkt);
        EnqueueVerdict::Admit
    }

    /// Called when `pkt` is dequeued for transmission. `q` describes the
    /// queue *after* this packet was removed.
    fn on_dequeue(&mut self, now: SimTime, q: &QueueState, pkt: &PacketView) -> DequeueVerdict {
        let _ = (now, q, pkt);
        DequeueVerdict::Pass
    }

    /// Take the marking-episode transition produced by the last
    /// `on_enqueue`/`on_dequeue` call, if any. Episodic schemes (ECN♯'s
    /// Algorithm 1) record entry/exit here; the port layer polls this
    /// after every AQM decision and forwards transitions to telemetry
    /// subscribers. Stateless schemes keep the default `None`.
    fn take_episode_transition(&mut self) -> Option<EpisodeTransition> {
        None
    }

    /// Downcast hook for white-box inspection of scheme-internal state
    /// (e.g. ECN♯'s `MarkStats`) behind the `Box<dyn Aqm>` a port holds.
    /// Schemes opt in by returning `Some(self)`; the default `None` keeps
    /// internals private. Used by equivalence tests that must assert a
    /// scheme's counters are identical across execution modes.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// One entry into — or exit from — a marking episode, as reported by an
/// episodic AQM via [`Aqm::take_episode_transition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpisodeTransition {
    /// `true` for episode entry, `false` for exit.
    pub entered: bool,
    /// Simulation time of the transition.
    pub at: SimTime,
    /// Marks attributed to the episode; meaningful on exit (entry
    /// reports the first mark, i.e. `1`).
    pub marks: u64,
}

/// Boxed AQM constructor, so scenario builders can stamp out one instance
/// per port.
pub type AqmFactory = Box<dyn Fn() -> Box<dyn Aqm> + Send + Sync>;

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A 10 Gbps queue state with the given backlog.
    pub fn q(backlog_bytes: u64) -> QueueState {
        QueueState {
            backlog_bytes,
            backlog_pkts: backlog_bytes / 1500,
            capacity_bytes: 2_000_000,
            drain_rate: Rate::from_gbps(10),
        }
    }

    /// An ECT MTU packet enqueued at `enq_us` microseconds.
    pub fn pkt(enq_us: u64) -> PacketView {
        PacketView {
            bytes: 1500,
            ect: true,
            enqueued_at: SimTime::from_micros(enq_us),
        }
    }

    /// A non-ECT MTU packet enqueued at `enq_us` microseconds.
    pub fn pkt_nonect(enq_us: u64) -> PacketView {
        PacketView {
            ect: false,
            ..pkt(enq_us)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_view_sojourn() {
        let p = PacketView {
            bytes: 1500,
            ect: true,
            enqueued_at: SimTime::from_micros(10),
        };
        assert_eq!(
            p.sojourn(SimTime::from_micros(25)),
            Duration::from_micros(15)
        );
        assert_eq!(p.sojourn(SimTime::from_micros(5)), Duration::ZERO);
    }

    #[test]
    fn resolution_helpers() {
        assert_eq!(mark_or_drop(true), DequeueVerdict::Mark);
        assert_eq!(mark_or_drop(false), DequeueVerdict::Drop);
        assert_eq!(admit_mark_or_drop(true), EnqueueVerdict::AdmitMark);
        assert_eq!(admit_mark_or_drop(false), EnqueueVerdict::Drop);
    }

    struct Noop;
    impl Aqm for Noop {
        fn name(&self) -> &'static str {
            "noop"
        }
    }

    #[test]
    fn default_hooks_pass_everything() {
        let mut a = Noop;
        let q = testutil::q(0);
        let p = testutil::pkt(0);
        assert_eq!(a.on_enqueue(SimTime::ZERO, &q, &p), EnqueueVerdict::Admit);
        assert_eq!(a.on_dequeue(SimTime::ZERO, &q, &p), DequeueVerdict::Pass);
    }
}

// Compile-time shard-safety proofs: AQMs sit on ports inside the
// `Network` a sharded engine (ROADMAP item 1) moves across worker
// threads — which is why the `Aqm` trait itself requires `Send`. Lint
// rules R7/R8 guard the source text; these assertions guard the types.
const fn assert_send<T: Send>() {}
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send::<Box<dyn Aqm>>();
    assert_send_sync::<CoDel>();
    assert_send_sync::<Pie>();
    assert_send_sync::<DctcpRed>();
    assert_send_sync::<Tcn>();
    assert_send_sync::<DropTail>();
};
