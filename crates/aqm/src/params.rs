//! Marking-threshold arithmetic from §2.1 of the paper.
//!
//! Equation 1: `K = λ × C × RTT` — the instantaneous queue-length threshold
//! that keeps the bottleneck busy for a congestion-control algorithm whose
//! window-reduction aggressiveness is `λ`.
//!
//! Equation 2: `T = K / C = λ × RTT` — the equivalent *sojourn time*
//! threshold, independent of the drain rate, which is what makes
//! sojourn-based marking compatible with packet schedulers.

use ecnsharp_sim::{Duration, Rate};

/// λ for regular ECN-enabled TCP, which halves its window on a mark.
pub const LAMBDA_ECN_TCP: f64 = 1.0;

/// λ for DCTCP in theory (Alizadeh et al., SIGMETRICS'11 give 0.17).
pub const LAMBDA_DCTCP: f64 = 0.17;

/// Equation 1: ideal instantaneous queue-length marking threshold in bytes.
///
/// ```
/// use ecnsharp_aqm::params::queue_threshold;
/// use ecnsharp_sim::{Rate, Duration};
/// // λ=1, C=10 Gbps, RTT=200 us  =>  K = 250 KB (paper's RED-Tail setting)
/// assert_eq!(queue_threshold(1.0, Rate::from_gbps(10), Duration::from_micros(200)), 250_000);
/// ```
pub fn queue_threshold(lambda: f64, capacity: Rate, rtt: Duration) -> u64 {
    debug_assert!(lambda > 0.0);
    (lambda * capacity.bdp(rtt) as f64).round() as u64
}

/// Equation 2: ideal sojourn-time marking threshold.
///
/// ```
/// use ecnsharp_aqm::params::sojourn_threshold;
/// use ecnsharp_sim::Duration;
/// assert_eq!(sojourn_threshold(1.0, Duration::from_micros(200)), Duration::from_micros(200));
/// assert_eq!(sojourn_threshold(0.5, Duration::from_micros(200)), Duration::from_micros(100));
/// ```
pub fn sojourn_threshold(lambda: f64, rtt: Duration) -> Duration {
    debug_assert!(lambda > 0.0);
    rtt.mul_f64(lambda)
}

/// Convert a queue-length threshold into the sojourn threshold it implies at
/// a given drain rate (`T = K / C`).
pub fn queue_to_sojourn(k_bytes: u64, capacity: Rate) -> Duration {
    capacity.tx_time(k_bytes)
}

/// Convert a sojourn threshold into the queue length it implies at a given
/// drain rate (`K = T × C`).
pub fn sojourn_to_queue(t: Duration, capacity: Rate) -> u64 {
    capacity.bytes_in(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_matches_paper_settings() {
        let c = Rate::from_gbps(10);
        // 90th-pct RTT 200 us with λ=1 => 250 KB (paper's DCTCP-RED-Tail).
        assert_eq!(queue_threshold(1.0, c, Duration::from_micros(200)), 250_000);
        // average RTT ~100 us => ~125 KB; the paper rounds its RED-AVG
        // setting to 80 KB for the testbed; both are "low-percentile" choices.
        assert_eq!(queue_threshold(1.0, c, Duration::from_micros(100)), 125_000);
    }

    #[test]
    fn eq2_is_rate_free() {
        let t = sojourn_threshold(LAMBDA_ECN_TCP, Duration::from_micros(210));
        assert_eq!(t, Duration::from_micros(210));
        let t = sojourn_threshold(LAMBDA_DCTCP, Duration::from_micros(100));
        assert_eq!(t, Duration::from_micros(17));
    }

    #[test]
    fn conversions_roundtrip() {
        let c = Rate::from_gbps(10);
        let k = 250_000u64;
        let t = queue_to_sojourn(k, c);
        assert_eq!(t, Duration::from_micros(200));
        assert_eq!(sojourn_to_queue(t, c), k);
    }

    #[test]
    // Comparing a const against the literal it is defined as.
    #[allow(clippy::float_cmp)]
    fn lambda_constants() {
        assert_eq!(LAMBDA_ECN_TCP, 1.0);
        assert!((LAMBDA_DCTCP - 0.17).abs() < 1e-12);
    }
}
