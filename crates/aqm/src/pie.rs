//! PIE — Proportional Integral controller Enhanced (RFC 8033), simplified,
//! in ECN-marking mode.
//!
//! PIE estimates the current queueing delay from the backlog and drain rate,
//! then updates a marking probability with a PI controller:
//!
//! `p += alpha * (delay - target) + beta * (delay - delay_old)`
//!
//! The paper cites PIE (§6) as an Internet AQM that keeps delay near a
//! constant target but lacks the aggressive instantaneous component needed
//! for datacenter bursts; it is included as an extension comparator.

use crate::{admit_mark_or_drop, Aqm, DequeueVerdict, EnqueueVerdict, PacketView, QueueState};
use ecnsharp_sim::{Duration, Rng, SimTime};

/// Configuration for the PIE controller.
#[derive(Debug, Clone, Copy)]
pub struct PieConfig {
    /// Queueing-delay target.
    pub target: Duration,
    /// Probability update period.
    pub t_update: Duration,
    /// Proportional gain, applied to the delay error *normalized by the
    /// target* so the controller works at datacenter (µs) scale — RFC 8033's
    /// absolute-seconds gains are tuned for millisecond Internet delays.
    pub alpha: f64,
    /// Differential gain (same normalization).
    pub beta: f64,
}

impl Default for PieConfig {
    fn default() -> Self {
        PieConfig {
            // Datacenter-scaled defaults (Internet defaults are 15 ms/16 ms).
            target: Duration::from_micros(85),
            t_update: Duration::from_micros(200),
            alpha: 0.125,
            beta: 1.25,
        }
    }
}

/// PIE AQM in marking mode.
pub struct Pie {
    cfg: PieConfig,
    prob: f64,
    delay_old: f64,
    last_update: Option<SimTime>,
    rng: Rng,
}

impl Pie {
    /// Create from config with a deterministic seed for the marking dice.
    pub fn new(cfg: PieConfig, seed: u64) -> Self {
        assert!(
            !cfg.t_update.is_zero(),
            "PIE update period must be positive"
        );
        Pie {
            cfg,
            prob: 0.0,
            delay_old: 0.0,
            last_update: None,
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Current marking probability (for tests/monitoring).
    pub fn prob(&self) -> f64 {
        self.prob
    }

    /// Lazy periodic probability update, run from the packet path: PIE's
    /// reference implementation uses a timer; updating on the first packet
    /// past each period boundary is equivalent for non-idle queues.
    fn maybe_update(&mut self, now: SimTime, q: &QueueState) {
        let due = match self.last_update {
            None => true,
            Some(t) => now.saturating_since(t) >= self.cfg.t_update,
        };
        if !due {
            return;
        }
        self.last_update = Some(now);
        let delay = q.drain_rate.tx_time(q.backlog_bytes).as_secs_f64();
        let target = self.cfg.target.as_secs_f64();

        // RFC 8033 auto-tuning: scale gains down while the probability is
        // small so the controller doesn't slam between 0 and 1.
        let scale = if self.prob < 0.000_001 {
            1.0 / 2048.0
        } else if self.prob < 0.000_01 {
            1.0 / 512.0
        } else if self.prob < 0.000_1 {
            1.0 / 128.0
        } else if self.prob < 0.001 {
            1.0 / 32.0
        } else if self.prob < 0.01 {
            1.0 / 8.0
        } else if self.prob < 0.1 {
            1.0 / 2.0
        } else {
            1.0
        };

        let err = (delay - target) / target;
        let derr = (delay - self.delay_old) / target;
        let mut p = self.prob + scale * (self.cfg.alpha * err + self.cfg.beta * derr);
        // Exponential decay when the queue is idle. An empty queue yields
        // an exact 0.0 delay (0 bytes / rate), so equality is the correct
        // idle test here, not a tolerance.
        #[allow(clippy::float_cmp)] // lint: allow(float-cmp) 0.0 is an exact idle sentinel
        if delay == 0.0 && self.delay_old == 0.0 {
            p *= 0.98;
        }
        self.prob = p.clamp(0.0, 1.0);
        self.delay_old = delay;
    }
}

impl Aqm for Pie {
    fn name(&self) -> &'static str {
        "PIE"
    }

    fn on_enqueue(&mut self, now: SimTime, q: &QueueState, pkt: &PacketView) -> EnqueueVerdict {
        self.maybe_update(now, q);
        // The RFC's safeguards: never signal when the queue is tiny.
        if q.backlog_bytes < 2 * pkt.bytes {
            return EnqueueVerdict::Admit;
        }
        if self.rng.chance(self.prob) {
            admit_mark_or_drop(pkt.ect)
        } else {
            EnqueueVerdict::Admit
        }
    }

    fn on_dequeue(&mut self, _now: SimTime, _q: &QueueState, _pkt: &PacketView) -> DequeueVerdict {
        DequeueVerdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{pkt, q};

    fn pie() -> Pie {
        Pie::new(PieConfig::default(), 3)
    }

    #[test]
    fn probability_grows_under_standing_queue() {
        let mut p = pie();
        // 500 KB at 10 Gbps = 400 us delay >> 85 us target.
        for i in 0..2_000u64 {
            p.on_enqueue(SimTime::from_micros(i * 10), &q(500_000), &pkt(0));
        }
        assert!(p.prob() > 0.01, "prob {}", p.prob());
    }

    #[test]
    fn probability_decays_when_queue_empties() {
        let mut p = pie();
        for i in 0..2_000u64 {
            p.on_enqueue(SimTime::from_micros(i * 10), &q(500_000), &pkt(0));
        }
        let high = p.prob();
        for i in 2_000..6_000u64 {
            p.on_enqueue(SimTime::from_micros(i * 10), &q(0), &pkt(0));
        }
        assert!(
            p.prob() < high,
            "prob should fall: {} -> {}",
            high,
            p.prob()
        );
    }

    #[test]
    fn small_queue_never_marked() {
        let mut p = pie();
        // Even with a forced high probability, a sub-2-MTU backlog is safe.
        for i in 0..5_000u64 {
            p.on_enqueue(SimTime::from_micros(i * 10), &q(800_000), &pkt(0));
        }
        let v = p.on_enqueue(SimTime::from_micros(60_000), &q(1_000), &pkt(0));
        assert_eq!(v, EnqueueVerdict::Admit);
    }

    #[test]
    fn marks_when_probability_high() {
        let mut p = pie();
        for i in 0..20_000u64 {
            p.on_enqueue(SimTime::from_micros(i * 10), &q(2_000_000), &pkt(0));
        }
        let marked = (0..1_000)
            .filter(|i| {
                p.on_enqueue(
                    SimTime::from_micros(300_000 + i * 10),
                    &q(2_000_000),
                    &pkt(0),
                ) == EnqueueVerdict::AdmitMark
            })
            .count();
        assert!(marked > 100, "marked {marked}/1000");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut p = Pie::new(PieConfig::default(), seed);
            (0..3_000u64)
                .filter(|i| {
                    p.on_enqueue(SimTime::from_micros(i * 10), &q(400_000), &pkt(0))
                        == EnqueueVerdict::AdmitMark
                })
                .count()
        };
        assert_eq!(run(11), run(11));
    }
}
