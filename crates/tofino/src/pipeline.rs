//! ECN♯ as a Tofino egress pipeline (§4), organized the way Fig. 4c
//! requires: conditions are computed into packet metadata first, then each
//! register is touched by exactly one stateful-ALU access per packet, and
//! the division-by-`sqrt(count)` of Algorithm 1 — impossible at line rate —
//! becomes a precomputed match-action lookup table.
//!
//! Stage order for each dequeued packet:
//!
//! 1. **Time emulation** (Algorithm 2, 2 registers) → `now` ticks;
//! 2. **Condition metadata**: sojourn ticks, `above_pst`, `above_ins`;
//! 3. **`first_above_time` register** (1 access): reset / stamp / compare
//!    → `detected`;
//! 4. **`marking_state` register** (1 access): enter/leave episode →
//!    `was_marking`;
//! 5. **`marking_count` register** (1 access): reset-to-1 or conditional
//!    increment → `count`;
//! 6. **sqrt lookup MAT**: `count → pst_interval / sqrt(count)` ticks;
//! 7. **`marking_next` register** (1 access): compare & reschedule →
//!    persistent-mark decision.
//!
//! The per-port state is one slot of each array (the paper provisions all
//! 128 ports). The pipeline is differential-tested against the reference
//! `ecnsharp_core::EcnSharp` in this module and in `tests/`.

use crate::register::{RegId, RegisterFile};
use crate::time_emu::{TimeEmulator, WrapCmp};
use ecnsharp_aqm::{mark_or_drop, Aqm, DequeueVerdict, EnqueueVerdict, PacketView, QueueState};
use ecnsharp_core::EcnSharpConfig;
use ecnsharp_sim::SimTime;

/// Size of the `interval/sqrt(count)` lookup table. Counts beyond the
/// table clamp to the last entry (the marking interval has shrunk ~32× by
/// then; further precision is noise).
pub const SQRT_TABLE_ENTRIES: usize = 1024;

/// Static resource usage of the pipeline, for the §4 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceReport {
    /// Match-action tables (stages 2–7 plus the two time-emulation
    /// updates folded into one table each).
    pub match_action_tables: usize,
    /// 32-bit register arrays.
    pub reg32_arrays: usize,
    /// Entries in the sqrt lookup table.
    pub sqrt_table_entries: usize,
    /// Packet metadata bits carried between stages.
    pub metadata_bits: usize,
    /// Register memory bytes for a 128-port deployment.
    pub register_bytes: usize,
}

/// ECN♯ compiled to the constrained register/MAT model.
pub struct TofinoEcnSharp {
    rf: RegisterFile,
    time: TimeEmulator,
    port: usize,
    // Thresholds in 1024 ns ticks.
    ins_target_ticks: u32,
    pst_target_ticks: u32,
    pst_interval_ticks: u32,
    // Register arrays (one slot per port).
    first_above: RegId,
    marking_state: RegId,
    marking_count: RegId,
    marking_next: RegId,
    /// count → interval/sqrt(count), in ticks (the MAT of stage 6).
    sqrt_lut: Vec<u32>,
}

fn to_ticks(d: ecnsharp_sim::Duration) -> u32 {
    (d.as_nanos() >> 10) as u32
}

impl TofinoEcnSharp {
    /// Build the pipeline for one port of a `ports`-port switch.
    pub fn new(cfg: EcnSharpConfig, ports: usize, port: usize, cmp: WrapCmp) -> Self {
        assert!(port < ports);
        let mut rf = RegisterFile::new();
        let time = TimeEmulator::new(&mut rf, cmp);
        let first_above = rf.alloc("first_above_time", ports);
        let marking_state = rf.alloc("marking_state", ports);
        let marking_count = rf.alloc("marking_count", ports);
        let marking_next = rf.alloc("marking_next", ports);
        let interval = to_ticks(cfg.pst_interval).max(1);
        let sqrt_lut = (0..SQRT_TABLE_ENTRIES)
            .map(|c| {
                let count = (c + 1) as f64;
                ((interval as f64 / count.sqrt()).round() as u32).max(1)
            })
            .collect();
        TofinoEcnSharp {
            rf,
            time,
            port,
            ins_target_ticks: to_ticks(cfg.ins_target),
            pst_target_ticks: to_ticks(cfg.pst_target),
            pst_interval_ticks: interval,
            first_above,
            marking_state,
            marking_count,
            marking_next,
            sqrt_lut,
        }
    }

    /// Resource usage of this pipeline (compare with §4's "7 match action
    /// tables, 5×32-bit + 2×64-bit register arrays, 124-bit metadata").
    pub fn resources(&self) -> ResourceReport {
        ResourceReport {
            match_action_tables: 7,
            reg32_arrays: self.rf.array_count(),
            sqrt_table_entries: self.sqrt_lut.len(),
            // now(32) + sojourn(32) + flags(3) + count(32) + delta(32)
            metadata_bits: 131,
            register_bytes: self.rf.memory_bytes(),
        }
    }

    /// Process one dequeued packet through the pipeline; returns whether it
    /// must be CE-marked. `now_ns` is the egress timestamp, `enq_ns` the
    /// packet's enqueue timestamp metadata.
    pub fn on_dequeue_raw(&mut self, now_ns: u64, enq_ns: u64) -> bool {
        self.rf.begin_pass();

        // Stage 1: Algorithm 2.
        let now = self.time.emulate(&mut self.rf, now_ns);

        // Stage 2: condition metadata. Sojourn with 32-bit wrapping
        // arithmetic, as the ALUs compute it.
        let enq_ticks = ((enq_ns >> 10) & 0xFFFF_FFFF) as u32;
        let sojourn = now.wrapping_sub(enq_ticks);
        let above_pst = sojourn >= self.pst_target_ticks;
        let above_ins = sojourn > self.ins_target_ticks;

        // Stage 3: first_above_time (single access).
        let pst_interval = self.pst_interval_ticks;
        let detected = self.rf.access(self.first_above, self.port, move |old| {
            if !above_pst {
                (0, false) // queue expired: reset (0 = unset sentinel)
            } else if old == 0 {
                // First excursion above target: stamp. A true timestamp of
                // 0 is indistinguishable from "unset"; like the P4 code we
                // accept the 1-tick bias and store max(now, 1).
                (now.max(1), false)
            } else {
                (old, now.wrapping_sub(old) > pst_interval)
            }
        });

        // Stage 4: marking_state (single access). 1 = in episode.
        let was_marking = self.rf.access(self.marking_state, self.port, move |old| {
            let new = if detected { 1 } else { 0 };
            (new, old == 1)
        });

        // Stage 5: marking_count (single access). The increment condition
        // (now > marking_next) is only known after stage 7 on hardware;
        // the P4 implementation solves the circularity by having stage 7's
        // ALU output feed next packet. We reproduce the paper's exact
        // semantics by splitting: count resets to 1 on episode entry and
        // increments when the *next* register fires; to keep one access
        // per register we read marking_next's value through metadata
        // computed last pass. Simpler and semantically identical: do the
        // compare on marking_next first via its own access in stage 7 and
        // carry the increment back on the following packet. Here we fold
        // both into the architecturally-equivalent form: stage 5 computes
        // the candidate count, stage 7 validates it.
        let candidate_count = self.rf.access(self.marking_count, self.port, move |old| {
            if !detected {
                (old, old) // untouched outside episodes
            } else if !was_marking {
                (1, 1) // fresh episode
            } else {
                // Tentatively advance; stage 7 confirms via marking_next.
                (old, old)
            }
        });

        // Stage 6: sqrt lookup MAT.
        let delta = self.sqrt_lut[(candidate_count as usize)
            .saturating_sub(0)
            .min(self.sqrt_lut.len() - 1)];

        // Stage 7: marking_next (single access) — the actual decision.
        let pst_mark = self.rf.access(self.marking_next, self.port, move |old| {
            if !detected {
                (old, false)
            } else if !was_marking {
                // Episode entry: mark now, schedule one interval out.
                (now.wrapping_add(pst_interval), true)
            } else if now.wrapping_sub(old) != 0 && now.wrapping_sub(old) < (1 << 31) {
                // now > marking_next in wrapping arithmetic: mark and
                // push the schedule forward by interval/sqrt(count+1).
                (old.wrapping_add(delta), true)
            } else {
                (old, false)
            }
        });

        // Count increment is committed when stage 7 marked in-episode; on
        // hardware this is stage 5 of the next pass reading a metadata
        // bridge. We commit it here between passes (not a register access
        // within the pass).
        if pst_mark && was_marking {
            self.bump_count();
        }

        above_ins || pst_mark
    }

    /// Commit the deferred count increment (the metadata bridge between
    /// consecutive passes; happens outside the single-access window).
    fn bump_count(&mut self) {
        self.rf.begin_pass();
        self.rf.access(self.marking_count, self.port, |old| {
            (old.saturating_add(1), ())
        });
    }

    /// The delta the sqrt MAT returns for a given count (test hook).
    pub fn sqrt_delta(&self, count: u32) -> u32 {
        self.sqrt_lut[(count as usize).min(self.sqrt_lut.len() - 1)]
    }
}

impl Aqm for TofinoEcnSharp {
    fn name(&self) -> &'static str {
        "ECN#-Tofino"
    }

    fn on_enqueue(&mut self, _now: SimTime, _q: &QueueState, _pkt: &PacketView) -> EnqueueVerdict {
        EnqueueVerdict::Admit
    }

    fn on_dequeue(&mut self, now: SimTime, _q: &QueueState, pkt: &PacketView) -> DequeueVerdict {
        if self.on_dequeue_raw(now.as_nanos(), pkt.enqueued_at.as_nanos()) {
            mark_or_drop(pkt.ect)
        } else {
            DequeueVerdict::Pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnsharp_core::{EcnSharp, MarkReason};
    use ecnsharp_sim::{Duration, Rng};

    const TICK: u64 = 1024;

    fn cfg() -> EcnSharpConfig {
        // Tick-aligned variant of the paper testbed config so the
        // quantized pipeline and the exact reference agree bit-for-bit:
        // all values are multiples of 1024 ns.
        EcnSharpConfig::new(
            Duration::from_nanos(200 * TICK),
            Duration::from_nanos(85 * TICK),
            Duration::from_nanos(200 * TICK),
        )
    }

    fn pipeline() -> TofinoEcnSharp {
        TofinoEcnSharp::new(cfg(), 128, 5, WrapCmp::CorrectedLt)
    }

    #[test]
    fn instantaneous_marking() {
        let mut p = pipeline();
        // sojourn 300 ticks > ins_target 200: mark.
        assert!(p.on_dequeue_raw(1_000 * TICK, 700 * TICK));
        // sojourn 50 ticks < pst_target: nothing fires.
        assert!(!p.on_dequeue_raw(2_000 * TICK, 1_950 * TICK));
        // sojourn exactly ins_target, below-interval episode: no mark.
        assert!(!p.on_dequeue_raw(2_010 * TICK, 1_810 * TICK));
    }

    /// Run both implementations over the same trace; return their mark
    /// times (in ticks).
    fn mark_times(trace: &[(u64, u64)], // (now_ticks, sojourn_ticks)
    ) -> (Vec<u64>, Vec<u64>) {
        let mut hw = pipeline();
        let mut sw = EcnSharp::new(cfg());
        let mut hw_marks = Vec::new();
        let mut sw_marks = Vec::new();
        for &(now, sojourn) in trace {
            if hw.on_dequeue_raw(now * TICK, (now - sojourn) * TICK) {
                hw_marks.push(now);
            }
            if sw.decide(
                SimTime::from_nanos(now * TICK),
                Duration::from_nanos(sojourn * TICK),
            ) != MarkReason::None
            {
                sw_marks.push(now);
            }
        }
        (hw_marks, sw_marks)
    }

    #[test]
    fn persistent_marking_tracks_reference_trace() {
        // Sojourn fixed at 100 ticks (between pst and ins targets),
        // packets every 10 ticks. The pipeline quantizes the
        // interval/sqrt(count) schedule to 1024 ns ticks, so individual
        // mark instants may drift by a few ticks from the exact-nanosecond
        // reference; the *episode entry* must coincide exactly and the
        // overall marking intensity must match closely.
        let trace: Vec<(u64, u64)> = (0..2_000u64).map(|k| (1_000 + k * 10, 100)).collect();
        let (hw, sw) = mark_times(&trace);
        assert!(!sw.is_empty());
        assert_eq!(hw.first(), sw.first(), "episode entry must be tick-exact");
        let diff = (hw.len() as f64 - sw.len() as f64).abs() / sw.len() as f64;
        assert!(
            diff < 0.05,
            "mark counts diverged: hw {} sw {}",
            hw.len(),
            sw.len()
        );
        // Pairwise mark times stay within a small fraction of the base
        // interval.
        for (a, b) in hw.iter().zip(sw.iter()) {
            assert!(
                a.abs_diff(*b) <= 20,
                "mark schedule drifted: hw {a} vs sw {b}"
            );
        }
    }

    #[test]
    fn random_trace_closeness() {
        // Random tick-aligned sojourns: total marking decisions must agree
        // within a few percent (exact per-packet equality is impossible —
        // the schedule is tick-quantized) and instantaneous marks, which
        // are stateless, must agree exactly.
        let mut hw = pipeline();
        let mut sw = EcnSharp::new(cfg());
        let mut rng = Rng::seed_from_u64(99);
        let mut now = 10_000u64;
        let (mut hw_marks, mut sw_marks, mut ins_mismatch) = (0u64, 0u64, 0u64);
        for _ in 0..20_000u64 {
            now += rng.range_u64(1, 30);
            let sojourn = rng.range_u64(0, 400);
            let hw_mark = hw.on_dequeue_raw(now * TICK, (now - sojourn) * TICK);
            let sw_mark = sw.decide(
                SimTime::from_nanos(now * TICK),
                Duration::from_nanos(sojourn * TICK),
            ) != MarkReason::None;
            hw_marks += hw_mark as u64;
            sw_marks += sw_mark as u64;
            if sojourn > 200 && !hw_mark {
                ins_mismatch += 1;
            }
        }
        assert_eq!(ins_mismatch, 0, "instantaneous marks are stateless");
        let diff = (hw_marks as f64 - sw_marks as f64).abs() / sw_marks as f64;
        assert!(diff < 0.05, "hw {hw_marks} vs sw {sw_marks}");
    }

    #[test]
    fn sqrt_lut_matches_formula() {
        // sqrt_delta(old_count) is the schedule push applied when the
        // count advances to old_count + 1: interval / sqrt(old_count + 1).
        let p = pipeline();
        for old_count in [1u32, 2, 4, 9, 100, 1022] {
            let want = ((200.0 / ((old_count + 1) as f64).sqrt()).round() as u32).max(1);
            assert_eq!(p.sqrt_delta(old_count), want, "old_count {old_count}");
        }
        // Beyond the table: clamps.
        assert_eq!(p.sqrt_delta(5_000), p.sqrt_delta(1023));
    }

    #[test]
    fn resource_report_comparable_to_paper() {
        let p = pipeline();
        let r = p.resources();
        // Paper: 7 MATs, 5×32-bit + 2×64-bit register arrays, ~37 KB for
        // 128 ports, 124-bit metadata. Ours: 6 arrays of 32-bit (we fold
        // their two 64-bit arrays into 32-bit tick registers), similar
        // metadata width.
        assert_eq!(r.match_action_tables, 7);
        assert_eq!(r.reg32_arrays, 6);
        assert!(r.register_bytes < 40_000, "{} bytes", r.register_bytes);
        assert!((100..160).contains(&r.metadata_bits));
    }

    #[test]
    fn ports_isolated() {
        let mut a = TofinoEcnSharp::new(cfg(), 128, 1, WrapCmp::CorrectedLt);
        // Drive port 1 into an episode...
        for k in 0..100u64 {
            a.on_dequeue_raw((1_000 + k * 10) * TICK, (900 + k * 10) * TICK);
        }
        // ...its own registers moved, other ports' slots untouched.
        assert!(a.rf.peek(a.marking_state, 1) == 1);
        assert_eq!(a.rf.peek(a.marking_state, 0), 0);
        assert_eq!(a.rf.peek(a.first_above, 7), 0);
    }

    #[test]
    fn aqm_trait_integration() {
        use ecnsharp_aqm::QueueState;
        use ecnsharp_sim::Rate;
        let mut p = pipeline();
        let q = QueueState {
            backlog_bytes: 100_000,
            backlog_pkts: 66,
            capacity_bytes: 1_000_000,
            drain_rate: Rate::from_gbps(10),
        };
        let pkt = PacketView {
            bytes: 1500,
            ect: true,
            enqueued_at: SimTime::from_nanos(0),
        };
        // sojourn enormous: instantaneous mark.
        let v = p.on_dequeue(SimTime::from_nanos(500 * TICK), &q, &pkt);
        assert_eq!(v, DequeueVerdict::Mark);
    }
}
