//! Algorithm 2: emulating a 32-bit ~microsecond system time on Tofino.
//!
//! The egress pipeline supplies a 64-bit nanosecond timestamp, but Tofino
//! ALUs compare 32-bit values only. Using the lower 32 bits wraps every
//! ~4.3 s; the paper's trick: right-shift the lower 32 bits by 10 to get a
//! 22-bit coarse-microsecond (1024 ns tick) counter, and maintain the
//! missing high 10 bits in a register incremented whenever the 22-bit
//! value wraps. The resulting 32-bit tick counter wraps only every ~73 min.
//!
//! **Reproduction note.** Algorithm 2 as printed detects a wrap with
//! `time_low <= register_low`. Two packets inside the same 1024 ns tick
//! then *both* match the condition, spuriously bumping the high bits by
//! one tick-epoch (+2²² ticks ≈ 4.3 s) — at 10 Gbps line rate, back-to-back
//! packets are ~120 ns apart, so this fires constantly. The hardware code
//! surely used strict `<`; we implement both ([`WrapCmp`]), default to the
//! corrected one, and unit-test the discrepancy.

use crate::register::{RegId, RegisterFile};

/// Which wrap-detection comparison to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WrapCmp {
    /// The paper's literal `time_low <= register_low` (Algorithm 2 line 3).
    PaperLe,
    /// The corrected strict `time_low < register_low`.
    CorrectedLt,
}

/// The two-register time emulator.
pub struct TimeEmulator {
    reg_low: RegId,
    reg_high: RegId,
    cmp: WrapCmp,
}

/// The reference value Algorithm 2 approximates: the 1024 ns tick counter
/// truncated to 32 bits.
pub fn reference_ticks(tstamp_ns: u64) -> u32 {
    ((tstamp_ns >> 10) & 0xFFFF_FFFF) as u32
}

impl TimeEmulator {
    /// Allocate the emulator's two registers in `rf`.
    pub fn new(rf: &mut RegisterFile, cmp: WrapCmp) -> Self {
        TimeEmulator {
            reg_low: rf.alloc("time_emu_low", 1),
            reg_high: rf.alloc("time_emu_high", 1),
            cmp,
        }
    }

    /// Algorithm 2 for one packet: derive the emulated 32-bit tick time
    /// from the 64-bit nanosecond timestamp. Must be called once per pass.
    pub fn emulate(&self, rf: &mut RegisterFile, tstamp_ns: u64) -> u32 {
        let tmp = (tstamp_ns & 0xFFFF_FFFF) as u32;
        let time_low = tmp >> 10; // 22 bits
        let cmp = self.cmp;
        // One access to the low register: detect wrap, store new value.
        let wrapped = rf.access(self.reg_low, 0, move |old| {
            let wrapped = match cmp {
                WrapCmp::PaperLe => time_low <= old,
                WrapCmp::CorrectedLt => time_low < old,
            };
            (time_low, wrapped)
        });
        // One access to the high register: conditional increment, read out.
        let high = rf.access(self.reg_high, 0, move |old| {
            let new = if wrapped { old.wrapping_add(1) } else { old };
            (new, new)
        });
        (high << 22) | time_low
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn emu(cmp: WrapCmp) -> (RegisterFile, TimeEmulator) {
        let mut rf = RegisterFile::new();
        let e = TimeEmulator::new(&mut rf, cmp);
        (rf, e)
    }

    /// Feed a monotone series of nanosecond timestamps, return emulated vs
    /// reference ticks.
    fn run(cmp: WrapCmp, stamps: &[u64]) -> Vec<(u32, u32)> {
        let (mut rf, e) = emu(cmp);
        stamps
            .iter()
            .map(|&ts| {
                rf.begin_pass();
                (e.emulate(&mut rf, ts), reference_ticks(ts))
            })
            .collect()
    }

    #[test]
    fn matches_reference_without_wraps() {
        // Ticks strictly increasing, well inside one 22-bit window.
        let stamps: Vec<u64> = (1..1000u64).map(|k| k * 2048).collect();
        for (got, want) in run(WrapCmp::CorrectedLt, &stamps) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn tracks_reference_across_22bit_wraps() {
        // Jump across several 4.3 s epochs with ~1 ms steps near each edge.
        let mut stamps = Vec::new();
        let epoch = 1u64 << 32; // lower-32 wrap in ns = 2^32 ns
        for e in 0..3u64 {
            for k in 0..2_000u64 {
                stamps.push(e * epoch + k * 2_000_000); // 2 ms steps
            }
        }
        for (got, want) in run(WrapCmp::CorrectedLt, &stamps) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn paper_le_comparator_overcounts_on_same_tick() {
        // Two packets in the same 1024 ns tick: the literal algorithm
        // spuriously detects a wrap and jumps ~4.3 s into the future.
        let stamps = [10_240, 10_500]; // same tick (10)
        let le = run(WrapCmp::PaperLe, &stamps);
        let lt = run(WrapCmp::CorrectedLt, &stamps);
        assert_eq!(lt[1].0, lt[1].1, "corrected variant stays exact");
        assert_eq!(
            le[1].0,
            lt[1].0 + (1 << 22),
            "literal variant jumps one 22-bit epoch"
        );
    }

    #[test]
    fn wraps_at_32_bits_like_reference() {
        // March from t=0 across the full 32-bit tick wrap (~73 min of
        // simulated time) with one packet per 22-bit window (gap just
        // under the 4.19 s bound): the emulator must witness every wrap
        // and stay equal to the reference throughout, including the final
        // 32-bit wrap where the 10 high bits overflow naturally.
        let window_ns = 1u64 << 32; // one 22-bit tick window = 2^32 ns
        let stamps: Vec<u64> = (0..1_030u64).map(|k| k * (window_ns - 4096)).collect();
        for (got, want) in run(WrapCmp::CorrectedLt, &stamps) {
            assert_eq!(got, want);
        }
    }

    proptest! {
        /// For any strictly-tick-increasing timestamp sequence whose gaps
        /// stay below one 22-bit epoch, the corrected emulator equals the
        /// reference.
        #[test]
        fn prop_equivalence_under_gap_bound(
            gaps in proptest::collection::vec(1u64..4_000_000u64, 1..300),
        ) {
            // gaps are in 1024 ns ticks, each < 2^22.
            let mut ts = 0u64;
            let mut stamps = Vec::new();
            for g in gaps {
                ts += g * 1024;
                stamps.push(ts);
            }
            for (got, want) in run(WrapCmp::CorrectedLt, &stamps) {
                prop_assert_eq!(got, want);
            }
        }
    }
}
