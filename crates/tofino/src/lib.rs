//! # ecnsharp-tofino
//!
//! Emulation of the paper's §4 Barefoot Tofino implementation, faithful to
//! the two hardware constraints that shaped it:
//!
//! 1. **32-bit ALUs** — the 64-bit nanosecond egress timestamp cannot be
//!    compared directly, so [`TimeEmulator`] reproduces Algorithm 2's
//!    two-register 32-bit tick clock (with the paper's literal `<=`
//!    wrap test and the corrected `<` selectable via [`WrapCmp`] — see the
//!    reproduction note in [`time_emu`]);
//! 2. **one register access per pipeline pass** — [`RegisterFile`] panics
//!    on a second access, the same failure the Tofino compiler raises for
//!    the naive control flow of Fig. 4b; [`TofinoEcnSharp`] is ECN♯
//!    reorganized into per-register match-action stages (Fig. 4c) with the
//!    `interval/sqrt(count)` division replaced by a lookup table.
//!
//! The pipeline implements the same [`ecnsharp_aqm::Aqm`] trait as the
//! reference `ecnsharp_core::EcnSharp` and is differential-tested against
//! it packet-for-packet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;
pub mod register;
pub mod time_emu;

pub use pipeline::{ResourceReport, TofinoEcnSharp, SQRT_TABLE_ENTRIES};
pub use register::{RegId, RegisterFile};
pub use time_emu::{reference_ticks, TimeEmulator, WrapCmp};

// Compile-time shard-safety proofs: the pipeline model runs inside the
// `Network` a sharded engine (ROADMAP item 1) moves across worker
// threads. Lint rules R7/R8 guard the source text; these assertions
// guard the types themselves.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<TofinoEcnSharp>();
    assert_send_sync::<RegisterFile>();
    assert_send_sync::<TimeEmulator>();
};
