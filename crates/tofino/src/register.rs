//! Tofino register model with the hardware's central restriction: **one
//! access per register per pipeline pass** (§4.2). Reading a register,
//! comparing it and writing it back counts as that one access (a stateful
//! ALU operation); touching the same register from two different tables in
//! one pass is what made the naive control-flow translation of Fig. 4b
//! uncompilable.
//!
//! The model is deliberately strict: a second access in the same pass
//! panics, so any pipeline organization bug fails unit tests immediately
//! instead of silently diverging from what hardware would do.

use std::collections::BTreeSet;

/// A named array of 32-bit registers (one slot per switch port in the
/// paper's deployment) enforcing single-access-per-pass.
pub struct RegisterArray {
    name: &'static str,
    slots: Vec<u32>,
}

/// A set of register arrays plus per-pass access tracking.
pub struct RegisterFile {
    arrays: Vec<RegisterArray>,
    accessed_this_pass: BTreeSet<usize>,
    passes: u64,
}

/// Handle to one array inside a [`RegisterFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegId(usize);

impl RegisterFile {
    /// Create an empty register file.
    pub fn new() -> Self {
        RegisterFile {
            arrays: Vec::new(),
            accessed_this_pass: BTreeSet::new(),
            passes: 0,
        }
    }

    /// Allocate an array of `slots` 32-bit registers.
    pub fn alloc(&mut self, name: &'static str, slots: usize) -> RegId {
        assert!(slots > 0);
        self.arrays.push(RegisterArray {
            name,
            slots: vec![0; slots],
        });
        RegId(self.arrays.len() - 1)
    }

    /// Begin a new pipeline pass (a new packet): clears access marks.
    pub fn begin_pass(&mut self) {
        self.accessed_this_pass.clear();
        self.passes += 1;
    }

    /// Perform this pass's single access to `reg[idx]`: the stateful-ALU
    /// read-modify-write. `f` receives the current value and returns the
    /// new value plus an output carried into packet metadata.
    ///
    /// # Panics
    /// If `reg` was already accessed in this pass (the Tofino compile
    /// error, §4.2), or `idx` is out of range.
    pub fn access<T>(&mut self, reg: RegId, idx: usize, f: impl FnOnce(u32) -> (u32, T)) -> T {
        assert!(
            self.accessed_this_pass.insert(reg.0),
            "register '{}' accessed twice in one pipeline pass — \
             not compilable to Tofino",
            self.arrays[reg.0].name
        );
        let slot = &mut self.arrays[reg.0].slots[idx];
        let (new, out) = f(*slot);
        *slot = new;
        out
    }

    /// Read a register outside the pipeline (control-plane inspection;
    /// does not count as an access).
    pub fn peek(&self, reg: RegId, idx: usize) -> u32 {
        self.arrays[reg.0].slots[idx]
    }

    /// Number of allocated 32-bit register arrays.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Total register memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.arrays.iter().map(|a| a.slots.len() * 4).sum()
    }

    /// Pipeline passes executed.
    pub fn passes(&self) -> u64 {
        self.passes
    }
}

impl Default for RegisterFile {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_access_allowed() {
        let mut rf = RegisterFile::new();
        let r = rf.alloc("first_above_time", 128);
        rf.begin_pass();
        let old = rf.access(r, 3, |v| (v + 7, v));
        assert_eq!(old, 0);
        assert_eq!(rf.peek(r, 3), 7);
    }

    #[test]
    #[should_panic(expected = "accessed twice in one pipeline pass")]
    fn double_access_panics() {
        let mut rf = RegisterFile::new();
        let r = rf.alloc("first_above_time", 1);
        rf.begin_pass();
        rf.access(r, 0, |v| (v, ()));
        rf.access(r, 0, |v| (v, ())); // Fig. 4b's compile error
    }

    #[test]
    fn new_pass_resets_access_marks() {
        let mut rf = RegisterFile::new();
        let r = rf.alloc("marking_state", 1);
        for pass in 0..100u32 {
            rf.begin_pass();
            let prev = rf.access(r, 0, |v| (pass, v));
            if pass > 0 {
                assert_eq!(prev, pass - 1);
            }
        }
        assert_eq!(rf.passes(), 100);
    }

    #[test]
    fn different_registers_in_one_pass_ok() {
        let mut rf = RegisterFile::new();
        let a = rf.alloc("a", 1);
        let b = rf.alloc("b", 1);
        rf.begin_pass();
        rf.access(a, 0, |v| (v + 1, ()));
        rf.access(b, 0, |v| (v + 1, ()));
        assert_eq!(rf.peek(a, 0), 1);
        assert_eq!(rf.peek(b, 0), 1);
    }

    #[test]
    fn resource_accounting() {
        let mut rf = RegisterFile::new();
        rf.alloc("a", 128);
        rf.alloc("b", 128);
        assert_eq!(rf.array_count(), 2);
        assert_eq!(rf.memory_bytes(), 2 * 128 * 4);
    }

    #[test]
    fn per_port_slots_independent() {
        let mut rf = RegisterFile::new();
        let r = rf.alloc("per_port", 4);
        rf.begin_pass();
        rf.access(r, 0, |_| (11, ()));
        rf.begin_pass();
        rf.access(r, 3, |_| (33, ()));
        assert_eq!(rf.peek(r, 0), 11);
        assert_eq!(rf.peek(r, 1), 0);
        assert_eq!(rf.peek(r, 3), 33);
    }
}
