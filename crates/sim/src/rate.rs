//! Link rates and byte quantities.
//!
//! [`Rate`] is stored in bits per second. The conversion everybody needs in a
//! packet simulator — "how long does it take to serialize N bytes at this
//! rate" — is [`Rate::tx_time`], computed in integer nanoseconds with
//! rounding so that repeated transmissions don't accumulate float drift.

use crate::time::Duration;
use core::fmt;

/// A transmission rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rate(u64);

impl Rate {
    /// Construct from bits per second.
    #[inline]
    pub const fn from_bps(bps: u64) -> Self {
        Rate(bps)
    }

    /// Construct from megabits per second.
    #[inline]
    pub const fn from_mbps(mbps: u64) -> Self {
        Rate(mbps * 1_000_000)
    }

    /// Construct from gigabits per second.
    #[inline]
    pub const fn from_gbps(gbps: u64) -> Self {
        Rate(gbps * 1_000_000_000)
    }

    /// Raw bits per second.
    #[inline]
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Rate in Gbit/s as a float (for reporting).
    #[inline]
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to serialize `bytes` bytes at this rate, rounded to the nearest
    /// nanosecond.
    ///
    /// Uses 128-bit intermediate math: `bytes * 8e9` overflows u64 for
    /// multi-gigabyte transfers.
    #[inline]
    pub fn tx_time(self, bytes: u64) -> Duration {
        debug_assert!(self.0 > 0, "zero rate");
        let num = (bytes as u128) * 8 * 1_000_000_000;
        let den = self.0 as u128;
        Duration::from_nanos(((num + den / 2) / den) as u64)
    }

    /// Bytes fully serializable within `d` at this rate (floor).
    #[inline]
    pub fn bytes_in(self, d: Duration) -> u64 {
        let bits = (self.0 as u128) * (d.as_nanos() as u128) / 1_000_000_000;
        (bits / 8) as u64
    }

    /// The classic bandwidth-delay product `C × RTT` in bytes (Eq. 1's
    /// `C × RTT` factor).
    #[inline]
    pub fn bdp(self, rtt: Duration) -> u64 {
        self.bytes_in(rtt)
    }

    /// Scale the rate by a float factor (e.g. to express an offered load).
    #[inline]
    pub fn mul_f64(self, f: f64) -> Rate {
        debug_assert!(f >= 0.0);
        Rate((self.0 as f64 * f).round() as u64)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}Gbps", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2}Mbps", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

/// Commonly used byte-size constants for readability at call sites.
pub mod bytes {
    /// One kilobyte (10^3 bytes, matching the paper's KB thresholds).
    pub const KB: u64 = 1_000;
    /// One megabyte.
    pub const MB: u64 = 1_000_000;
    /// Standard Ethernet MTU-sized IP packet.
    pub const MTU: u64 = 1_500;
    /// TCP maximum segment size under a 1500 B MTU (40 B IP+TCP headers).
    pub const MSS: u64 = 1_460;
    /// Per-frame wire overhead beyond the IP packet: Ethernet header (14) +
    /// FCS (4) + preamble/SFD (8) + inter-frame gap (12) + IP/TCP headers
    /// are accounted separately in the packet size.
    pub const ETH_OVERHEAD: u64 = 38;
    /// IP + TCP header bytes carried inside the MTU.
    pub const HDR: u64 = 40;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_10g_mtu() {
        // 1500 B at 10 Gbps = 1.2 us (the paper quotes ~1.2 us).
        let t = Rate::from_gbps(10).tx_time(1_500);
        assert_eq!(t, Duration::from_nanos(1_200));
    }

    #[test]
    fn tx_time_rounding() {
        // 1 byte at 3 bps = 8/3 s = 2.666..s, rounds to 2_666_666_667 ns.
        let t = Rate::from_bps(3).tx_time(1);
        assert_eq!(t.as_nanos(), 2_666_666_667);
    }

    #[test]
    fn tx_time_huge_transfer_no_overflow() {
        // 10 GB at 10 Gbps = 8 s; naive u64 math would overflow.
        let t = Rate::from_gbps(10).tx_time(10_000_000_000);
        assert_eq!(t, Duration::from_secs(8));
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let r = Rate::from_gbps(10);
        let d = r.tx_time(123_456);
        let b = r.bytes_in(d);
        assert!((b as i64 - 123_456i64).abs() <= 1, "{b}");
    }

    #[test]
    fn bdp_matches_eq1() {
        // C = 10 Gbps, RTT = 200 us -> C*RTT = 250 KB (the paper's RED-Tail
        // threshold for the 90th-percentile RTT scenario).
        let k = Rate::from_gbps(10).bdp(Duration::from_micros(200));
        assert_eq!(k, 250_000);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Rate::from_gbps(10)), "10.00Gbps");
        assert_eq!(format!("{}", Rate::from_mbps(100)), "100.00Mbps");
    }

    #[test]
    fn load_scaling() {
        assert_eq!(Rate::from_gbps(10).mul_f64(0.5), Rate::from_gbps(5));
    }
}
