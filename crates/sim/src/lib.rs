//! # ecnsharp-sim
//!
//! Deterministic discrete-event simulation engine underpinning the ECN♯
//! reproduction: nanosecond time and rate units, a `(time, seq)`-ordered
//! event queue, and a seeded xoshiro256** RNG.
//!
//! Design follows the session's networking guides' emphasis on event-driven
//! simplicity (smoltcp-style): no interior mutability tricks, no async — a
//! packet simulator is CPU-bound and single-threaded determinism is the
//! feature that makes experiments reproducible.
//!
//! ```
//! use ecnsharp_sim::{EventQueue, SimTime, Duration, Rate, Rng};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::from_micros(3), "timer");
//! q.schedule(SimTime::from_micros(1), "packet");
//! assert_eq!(q.pop().unwrap().1, "packet");
//!
//! // 1500 B at 10 Gbps serializes in 1.2 us:
//! assert_eq!(Rate::from_gbps(10).tx_time(1500), Duration::from_nanos(1200));
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let sample = rng.exp_duration(Duration::from_micros(100));
//! assert!(sample.as_nanos() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod invariant;
pub mod queue;
pub mod rate;
pub mod rng;
pub mod supervise;
pub mod time;
pub mod wheel;

pub use queue::EventQueue;
pub use rate::{bytes, Rate};
pub use rng::{hash_mix, DetHasher, DetMap, DetState, Rng};
pub use supervise::{MemBreach, MemComponent, ProgressGuard, ShardDiag, SimError, Supervision};
pub use time::{Duration, SimTime};
pub use wheel::{TimerToken, TimerWheel};

// Compile-time shard-safety proofs: the sharded engine (ROADMAP item 1)
// moves these values across worker threads, so losing `Send`/`Sync` must
// be a compile error here, not a runtime surprise there. Lint rules R7/R8
// guard the source text; these assertions guard the types themselves.
const fn assert_send<T: Send>() {}
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send::<EventQueue<u64>>();
    assert_send::<TimerWheel<u64>>();
    assert_send_sync::<Rng>();
    assert_send_sync::<Duration>();
    assert_send_sync::<SimTime>();
    assert_send_sync::<Rate>();
    assert_send_sync::<Supervision>();
    assert_send_sync::<SimError>();
    // Cache-layout pins: the time types must stay word-sized — they are
    // embedded in every queue entry, wheel cell, and (downstream) packet.
    // The calendar-lane header pin lives next to `Lane` in `queue.rs`
    // (the type is private to the module).
    assert!(std::mem::size_of::<SimTime>() == 8);
    assert!(std::mem::size_of::<Duration>() == 8);
};
