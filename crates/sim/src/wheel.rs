//! Hierarchical timing wheel: O(1) arm and **true O(1) cancel/re-arm**
//! for the engine's timer population.
//!
//! The calendar queue in [`crate::queue`] is ideal for events that always
//! fire (packet arrivals, tx-done), but timers are different: a TCP RTO is
//! re-armed on every ACK and almost never expires, so a queue that can
//! only *add* events is forced into lazy cancellation — pushing a fresh
//! ~10 ms–1 s event per packet and discarding the stale ones as they pop.
//! Varghese & Lauck's hierarchical timing wheels solve exactly this: slot
//! the timer by expiry into a level whose resolution matches its distance,
//! keep each slot as a doubly-linked list so removal is O(1), and cascade
//! entries down a level as time advances.
//!
//! # Shape
//!
//! Three levels of `SLOTS` slots each, with slot widths of 1, `SLOTS`,
//! and `SLOTS`² calendar buckets (a bucket is `1 << LANE_BITS` ns, the
//! calendar queue's lane width — the wheel deliberately shares that
//! granularity so a level-0 slot drains into exactly one refill batch):
//!
//! - level 0: 512 × 1.024 µs ≈ 524 µs of horizon (pacing, delayed ACKs)
//! - level 1: 512 × 524 µs ≈ 268 ms (RTOs, backed-off RTOs)
//! - level 2: 512 × 268 ms ≈ 137 s (max-RTO tail, experiment bookkeeping)
//! - overflow list beyond that (never hit by the shipped experiments)
//!
//! Entries live in a slab; a [`TimerToken`] is `(slab index, generation)`,
//! and the generation is bumped every time a slab cell is freed, so a
//! stale token can never cancel an unrelated later timer (ABA guard).
//! Slots are intrusive doubly-linked lists threaded through the slab, so
//! cancel unlinks in O(1) without touching neighbours' cache lines more
//! than necessary.
//!
//! # Cascading without a tick
//!
//! A discrete-event engine has no periodic tick to drive cascades, and
//! cascading eagerly would be wrong anyway: the wheel may only advance to
//! a bucket `b` once nothing (timer or regular event) can still be
//! scheduled before `b`. The owning [`crate::queue::EventQueue`] therefore
//! calls [`TimerWheel::advance_to`] from its refill path with the chosen
//! global-minimum bucket; the wheel moves its base there and cascades the
//! (provably at most one per level) higher-level slot covering the new
//! window. All skipped slots are provably empty because every live timer
//! expires at or after the global minimum.
//!
//! The wheel stores `(time, seq, event)` triples where `seq` comes from
//! the owning queue's global sequence counter; fired timers are drained
//! into the queue's sorted batch, so replay order is exactly the same
//! `(time, seq)` total order as if the timer had been a plain event.

use crate::time::SimTime;

/// log2 of the number of slots per wheel level.
const SLOT_BITS: u32 = 9;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Words per level in the slot-occupancy bitmaps.
const OCC_WORDS: usize = SLOTS / 64;
/// Wheel levels in front of the overflow list.
const LEVELS: usize = 3;
/// Null link in the slab's intrusive lists.
const NIL: u32 = u32::MAX;

/// Calendar bucket of a timestamp — shared with the calendar queue so a
/// level-0 slot maps 1:1 onto a refill batch.
#[inline]
fn bucket(t: SimTime) -> u64 {
    t.as_nanos() >> crate::queue::LANE_BITS
}

/// Handle to an armed timer: slab index plus an ABA-guarding generation.
///
/// Tokens are cheap `Copy` values. A token goes stale once the timer
/// fires, is cancelled, or is replaced by a re-arm; using a stale token
/// is safe and reports [`Cancelled::Stale`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerToken {
    idx: u32,
    gen: u32,
}

/// Where one slab entry currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// On the freelist.
    Free,
    /// In wheel level `.0`, slot `.1`.
    Wheel(u8, u16),
    /// In the overflow list (beyond the level-2 horizon).
    Overflow,
    /// Armed into the bucket the owning queue is already draining: the
    /// payload was handed to the queue's batch at arm time and only this
    /// `(time, seq)` marker remains for cancellation.
    External,
}

/// Concrete slot a bucket maps to under the current base.
enum Placement {
    /// `(level, slot)` within the wheel.
    Slot(usize, usize),
    /// Beyond every level's window.
    Overflow,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    gen: u32,
    prev: u32,
    next: u32,
    loc: Loc,
    event: Option<E>,
}

/// Outcome of [`TimerWheel::cancel`].
#[derive(Debug, PartialEq, Eq)]
pub enum Cancelled<E> {
    /// The token was stale (timer already fired, cancelled, or re-armed).
    Stale,
    /// The timer was live in the wheel; its payload is returned.
    Live(E),
    /// The timer had been armed into the queue's draining batch; the
    /// caller owns the payload and can locate it by this `(time, seq)`.
    External(SimTime, u64),
}

/// The hierarchical timing wheel. See the module docs for the design.
pub struct TimerWheel<E> {
    slab: Vec<Entry<E>>,
    free_head: u32,
    /// Intrusive list heads, `heads[level][slot]`.
    heads: Vec<[u32; SLOTS]>,
    /// Slot-occupancy bitmaps, one per level.
    occ: [[u64; OCC_WORDS]; LEVELS],
    overflow_head: u32,
    /// Current minimum possible bucket: every resident timer expires in a
    /// bucket `>= base`, and the level windows are aligned pages around it.
    base: u64,
    /// Wheel-resident timers (excludes [`Loc::External`] markers).
    len: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// Create an empty wheel based at bucket 0.
    pub fn new() -> Self {
        TimerWheel {
            slab: Vec::new(),
            free_head: NIL,
            heads: vec![[NIL; SLOTS]; LEVELS],
            occ: [[0; OCC_WORDS]; LEVELS],
            overflow_head: NIL,
            base: 0,
            len: 0,
        }
    }

    /// Number of wheel-resident timers.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no timers are resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's current base bucket (advanced by [`advance_to`]).
    ///
    /// [`advance_to`]: TimerWheel::advance_to
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    fn alloc(&mut self, time: SimTime, seq: u64, event: Option<E>) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let cell = &mut self.slab[idx as usize];
            self.free_head = cell.next;
            cell.time = time;
            cell.seq = seq;
            cell.prev = NIL;
            cell.next = NIL;
            cell.event = event;
            idx
        } else {
            let idx = self.slab.len() as u32;
            self.slab.push(Entry {
                time,
                seq,
                gen: 0,
                prev: NIL,
                next: NIL,
                loc: Loc::Free,
                event,
            });
            idx
        }
    }

    /// Return a cell to the freelist, bumping its generation so every
    /// outstanding token for it goes stale.
    fn free(&mut self, idx: u32) {
        let head = self.free_head;
        let cell = &mut self.slab[idx as usize];
        cell.gen = cell.gen.wrapping_add(1);
        cell.loc = Loc::Free;
        cell.event = None;
        cell.prev = NIL;
        cell.next = head;
        self.free_head = idx;
    }

    /// Map a bucket (`>= self.base`) to its level/slot under the aligned
    /// page windows around the current base.
    fn place(&self, b: u64) -> Placement {
        if b >> SLOT_BITS == self.base >> SLOT_BITS {
            Placement::Slot(0, (b & SLOT_MASK) as usize)
        } else if b >> (2 * SLOT_BITS) == self.base >> (2 * SLOT_BITS) {
            Placement::Slot(1, ((b >> SLOT_BITS) & SLOT_MASK) as usize)
        } else if b >> (3 * SLOT_BITS) == self.base >> (3 * SLOT_BITS) {
            Placement::Slot(2, ((b >> (2 * SLOT_BITS)) & SLOT_MASK) as usize)
        } else {
            Placement::Overflow
        }
    }

    /// Push `idx` onto the front of the list its bucket places it in.
    fn link(&mut self, idx: u32) {
        let i = idx as usize;
        let b = bucket(self.slab[i].time).max(self.base);
        let (loc, old) = match self.place(b) {
            Placement::Slot(l, s) => {
                self.occ[l][s >> 6] |= 1u64 << (s & 63);
                let old = self.heads[l][s];
                self.heads[l][s] = idx;
                (Loc::Wheel(l as u8, s as u16), old)
            }
            Placement::Overflow => {
                let old = self.overflow_head;
                self.overflow_head = idx;
                (Loc::Overflow, old)
            }
        };
        self.slab[i].prev = NIL;
        self.slab[i].next = old;
        self.slab[i].loc = loc;
        if old != NIL {
            self.slab[old as usize].prev = idx;
        }
        self.len += 1;
    }

    /// O(1) removal of a wheel-resident cell from its intrusive list.
    fn unlink(&mut self, idx: u32) {
        let i = idx as usize;
        let (prev, next, loc) = (self.slab[i].prev, self.slab[i].next, self.slab[i].loc);
        if next != NIL {
            self.slab[next as usize].prev = prev;
        }
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else {
            match loc {
                Loc::Wheel(l, s) => {
                    let (l, s) = (l as usize, s as usize);
                    self.heads[l][s] = next;
                    if next == NIL {
                        self.occ[l][s >> 6] &= !(1u64 << (s & 63));
                    }
                }
                Loc::Overflow => self.overflow_head = next,
                // Free/External cells are never linked; nothing to detach.
                Loc::Free | Loc::External => return,
            }
        }
        self.len -= 1;
    }

    /// Arm a timer expiring at `time` with the queue-issued sequence
    /// number `seq`. The bucket of `time` must be `>= base` (the owning
    /// queue routes earlier arms through [`arm_external`]).
    ///
    /// [`arm_external`]: TimerWheel::arm_external
    pub fn arm(&mut self, time: SimTime, seq: u64, event: E) -> TimerToken {
        crate::invariant!(
            bucket(time) >= self.base,
            "arming below the wheel base: bucket {} < {}",
            bucket(time),
            self.base
        );
        let idx = self.alloc(time, seq, Some(event));
        self.link(idx);
        TimerToken {
            idx,
            gen: self.slab[idx as usize].gen,
        }
    }

    /// Register a timer whose payload the owning queue already placed into
    /// its draining batch (expiry bucket at or before the queue cursor).
    /// Only the `(time, seq)` marker is kept so a later cancel can locate
    /// and remove the batched event.
    pub fn arm_external(&mut self, time: SimTime, seq: u64) -> TimerToken {
        let idx = self.alloc(time, seq, None);
        self.slab[idx as usize].loc = Loc::External;
        TimerToken {
            idx,
            gen: self.slab[idx as usize].gen,
        }
    }

    /// Cancel the timer behind `tok`. O(1) for wheel-resident timers.
    pub fn cancel(&mut self, tok: TimerToken) -> Cancelled<E> {
        let i = tok.idx as usize;
        if i >= self.slab.len() || self.slab[i].gen != tok.gen {
            return Cancelled::Stale;
        }
        match self.slab[i].loc {
            Loc::Free => Cancelled::Stale,
            Loc::Wheel(..) | Loc::Overflow => {
                self.unlink(tok.idx);
                let ev = self.slab[i].event.take();
                self.free(tok.idx);
                match ev {
                    Some(e) => Cancelled::Live(e),
                    // Defensive: resident cells always carry a payload.
                    None => Cancelled::Stale,
                }
            }
            Loc::External => {
                let (t, s) = (self.slab[i].time, self.slab[i].seq);
                self.free(tok.idx);
                Cancelled::External(t, s)
            }
        }
    }

    /// Earliest bucket holding a resident timer, or `None` when empty.
    ///
    /// Exact even when the earliest timer sits in a higher level: level-0
    /// slots map 1:1 onto buckets, and a higher level's first occupied
    /// slot is scanned for its minimum (a short list, and only reached
    /// when no nearer event exists anywhere in the engine).
    pub fn min_bucket(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        if let Some(s) = lowest_bit(&self.occ[0]) {
            return Some(((self.base >> SLOT_BITS) << SLOT_BITS) + s as u64);
        }
        for l in 1..LEVELS {
            if let Some(s) = lowest_bit(&self.occ[l]) {
                return self.list_min_bucket(self.heads[l][s]);
            }
        }
        self.list_min_bucket(self.overflow_head)
    }

    /// Cheap lower bound on [`min_bucket`]: exact when the earliest timer
    /// sits in level 0, otherwise the first bucket covered by the first
    /// occupied higher-level slot (or the level-2 page end when only the
    /// overflow list is populated). Costs only occupancy-bitmap word
    /// scans — no cell-list walk — so the owning queue's refill can rule
    /// the wheel out against a nearer lane/heap event without touching
    /// timer cells. Never returns a value greater than [`min_bucket`].
    ///
    /// [`min_bucket`]: TimerWheel::min_bucket
    pub fn min_bucket_lower_bound(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        if let Some(s) = lowest_bit(&self.occ[0]) {
            return Some(((self.base >> SLOT_BITS) << SLOT_BITS) + s as u64);
        }
        if let Some(s) = lowest_bit(&self.occ[1]) {
            return Some(
                ((self.base >> (2 * SLOT_BITS)) << (2 * SLOT_BITS)) + ((s as u64) << SLOT_BITS),
            );
        }
        if let Some(s) = lowest_bit(&self.occ[2]) {
            return Some(
                ((self.base >> (3 * SLOT_BITS)) << (3 * SLOT_BITS))
                    + ((s as u64) << (2 * SLOT_BITS)),
            );
        }
        // Only the overflow list is populated: everything there lies past
        // the current level-2 page by construction (see `place`).
        Some(((self.base >> (3 * SLOT_BITS)) + 1) << (3 * SLOT_BITS))
    }

    fn list_min_bucket(&self, mut idx: u32) -> Option<u64> {
        let mut best: Option<u64> = None;
        while idx != NIL {
            let cell = &self.slab[idx as usize];
            let b = bucket(cell.time);
            best = Some(best.map_or(b, |x| x.min(b)));
            idx = cell.next;
        }
        best
    }

    /// Advance the base to bucket `b`, cascading higher-level slots that
    /// now fall inside lower-level windows.
    ///
    /// Caller contract (upheld by the queue's refill): `b` is at most the
    /// engine's global minimum pending bucket, so every resident timer
    /// expires at or after `b` — which is what makes skipping the
    /// intermediate slots sound (they are provably empty).
    pub fn advance_to(&mut self, b: u64) {
        if b <= self.base {
            return;
        }
        let old = self.base;
        self.base = b;
        if self.len == 0 {
            return;
        }
        let l0_turn = b >> SLOT_BITS != old >> SLOT_BITS;
        let l1_turn = b >> (2 * SLOT_BITS) != old >> (2 * SLOT_BITS);
        let l2_turn = b >> (3 * SLOT_BITS) != old >> (3 * SLOT_BITS);
        // Every slot of a page being turned away from covers only buckets
        // before `b`, so by the caller contract it must already be empty.
        crate::invariant!(
            (!l0_turn || lowest_bit(&self.occ[0]).is_none())
                && (!l1_turn || lowest_bit(&self.occ[1]).is_none())
                && (!l2_turn || lowest_bit(&self.occ[2]).is_none()),
            "wheel advance skipped a non-empty slot (base {old} -> {b})"
        );
        if l2_turn {
            // Re-place the overflow list against the new page windows.
            self.replant_overflow();
        }
        if l1_turn {
            // The level-2 slot covering b's level-1 page holds exactly the
            // timers whose bucket >> 18 equals b's; cascade them down.
            self.cascade_slot(2, ((b >> (2 * SLOT_BITS)) & SLOT_MASK) as usize);
        }
        if l0_turn {
            self.cascade_slot(1, ((b >> SLOT_BITS) & SLOT_MASK) as usize);
        }
    }

    /// Detach every cell in `(level, slot)` and re-place it under the
    /// (just-advanced) base. Entries keep their `(time, seq)` identity and
    /// generation: cascading is invisible to tokens and replay order.
    fn cascade_slot(&mut self, l: usize, s: usize) {
        let mut idx = self.heads[l][s];
        if idx == NIL {
            return;
        }
        self.heads[l][s] = NIL;
        self.occ[l][s >> 6] &= !(1u64 << (s & 63));
        while idx != NIL {
            let next = self.slab[idx as usize].next;
            self.len -= 1; // link() re-increments
            self.link(idx);
            idx = next;
        }
    }

    fn replant_overflow(&mut self) {
        let mut idx = self.overflow_head;
        self.overflow_head = NIL;
        while idx != NIL {
            let next = self.slab[idx as usize].next;
            self.len -= 1;
            self.link(idx);
            idx = next;
        }
    }

    /// Drain every timer expiring in bucket `b` (which must be inside the
    /// level-0 window, i.e. after `advance_to(b)`) into `out` as
    /// `(time, seq, event)` triples, unordered. Returns the number drained.
    pub fn drain_bucket(&mut self, b: u64, out: &mut Vec<(SimTime, u64, E)>) -> usize {
        if b >> SLOT_BITS != self.base >> SLOT_BITS {
            return 0;
        }
        let s = (b & SLOT_MASK) as usize;
        let mut idx = self.heads[0][s];
        if idx == NIL {
            return 0;
        }
        self.heads[0][s] = NIL;
        self.occ[0][s >> 6] &= !(1u64 << (s & 63));
        let mut n = 0usize;
        while idx != NIL {
            let i = idx as usize;
            let next = self.slab[i].next;
            if let Some(ev) = self.slab[i].event.take() {
                out.push((self.slab[i].time, self.slab[i].seq, ev));
                n += 1;
            }
            self.len -= 1;
            // Keep the cell as an External marker instead of freeing it:
            // the drained event now sits in the owning queue's batch, and
            // a cancel/re-arm racing ahead of the pop (the queue peeked
            // into this bucket before a causally-earlier event arrived —
            // the conservative-window engine does exactly that at
            // barriers) must still find and remove it by `(time, seq)`.
            // The marker is freed on cancel or via [`release_external`]
            // once the event pops and fires.
            //
            // [`release_external`]: TimerWheel::release_external
            self.slab[i].loc = Loc::External;
            self.slab[i].prev = NIL;
            self.slab[i].next = NIL;
            idx = next;
        }
        n
    }

    /// Free the External marker behind `tok` after its drained event
    /// popped and fired. No-op on stale tokens and on wheel-resident
    /// cells (a one-shot `SetTimer` sharing an armed timer's key pops
    /// without consuming the armed cell).
    pub fn release_external(&mut self, tok: TimerToken) {
        let i = tok.idx as usize;
        if i < self.slab.len()
            && self.slab[i].gen == tok.gen
            && matches!(self.slab[i].loc, Loc::External)
        {
            self.free(tok.idx);
        }
    }

    /// Drop every timer (resident and external markers), invalidating all
    /// outstanding tokens. The base is kept: it tracks the owning queue's
    /// cursor, which `clear` does not rewind.
    pub fn clear(&mut self) {
        for i in 0..self.slab.len() {
            if !matches!(self.slab[i].loc, Loc::Free) {
                let cell = &mut self.slab[i];
                cell.gen = cell.gen.wrapping_add(1);
                cell.loc = Loc::Free;
                cell.event = None;
                cell.prev = NIL;
                cell.next = self.free_head;
                self.free_head = i as u32;
            }
        }
        self.heads = vec![[NIL; SLOTS]; LEVELS];
        self.occ = [[0; OCC_WORDS]; LEVELS];
        self.overflow_head = NIL;
        self.len = 0;
    }
}

/// Index of the lowest set bit across a level bitmap.
fn lowest_bit(words: &[u64; OCC_WORDS]) -> Option<usize> {
    for (w, &word) in words.iter().enumerate() {
        if word != 0 {
            return Some((w << 6) + word.trailing_zeros() as usize);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    const BUCKET_NS: u64 = 1 << crate::queue::LANE_BITS;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// Drain the wheel to completion in engine order: repeatedly advance
    /// to the min bucket and drain it, collecting `(time, seq)` pairs
    /// sorted within each bucket (as the queue's refill sort would).
    fn drain_all(w: &mut TimerWheel<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some(b) = w.min_bucket() {
            w.advance_to(b);
            let mut batch = Vec::new();
            let n = w.drain_bucket(b, &mut batch);
            assert_eq!(n, batch.len());
            assert!(n > 0, "min_bucket pointed at an empty bucket");
            batch.sort_unstable_by_key(|&(tt, s, _)| (tt, s));
            for (tt, s, e) in batch {
                assert_eq!(bucket(tt), b, "entry drained from the wrong bucket");
                out.push((tt.as_nanos(), s, e));
            }
        }
        assert!(w.is_empty());
        out
    }

    #[test]
    fn fires_in_time_order_across_levels() {
        let mut w = TimerWheel::new();
        // One timer per level plus overflow.
        let times = [
            3 * BUCKET_NS,                               // level 0
            700 * BUCKET_NS,                             // level 1
            SLOTS as u64 * SLOTS as u64 * BUCKET_NS * 3, // level 2
            SLOTS.pow(3) as u64 * BUCKET_NS * 2,         // overflow
        ];
        for (i, &ns) in times.iter().enumerate() {
            w.arm(t(ns), i as u64, i as u32);
        }
        let fired = drain_all(&mut w);
        let got: Vec<u64> = fired.iter().map(|&(ns, _, _)| ns).collect();
        let mut want = times.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn cancel_is_exact_and_tokens_go_stale() {
        let mut w = TimerWheel::new();
        let a = w.arm(t(10_000), 0, 0);
        let b = w.arm(t(20_000), 1, 1);
        let c = w.arm(t(20_000), 2, 2);
        assert_eq!(w.len(), 3);
        assert!(matches!(w.cancel(b), Cancelled::Live(1)));
        assert_eq!(w.len(), 2);
        // Double-cancel is stale, not a second removal.
        assert_eq!(w.cancel(b), Cancelled::Stale);
        assert_eq!(w.len(), 2);
        let fired = drain_all(&mut w);
        assert_eq!(
            fired.iter().map(|&(_, _, e)| e).collect::<Vec<_>>(),
            vec![0, 2]
        );
        // Drained timers keep an External marker so a cancel racing ahead
        // of the pop can still find the batched event by `(time, seq)`;
        // the cancel itself frees the marker, so a second one is stale.
        assert_eq!(w.cancel(a), Cancelled::External(t(10_000), 0));
        assert_eq!(w.cancel(a), Cancelled::Stale);
        // A timer that actually fires hands its marker back through
        // `release_external`; only then does its token go stale.
        w.release_external(c);
        assert_eq!(w.cancel(c), Cancelled::Stale);
    }

    #[test]
    fn generation_guard_defeats_slot_reuse() {
        let mut w = TimerWheel::new();
        let a = w.arm(t(10_000), 0, 7);
        assert!(matches!(w.cancel(a), Cancelled::Live(7)));
        // The freed cell is reused by the next arm...
        let b = w.arm(t(30_000), 1, 8);
        assert_eq!(a.idx, b.idx, "freelist should reuse the cell");
        // ...but the old token must not be able to cancel the new timer.
        assert_eq!(w.cancel(a), Cancelled::Stale);
        assert!(matches!(w.cancel(b), Cancelled::Live(8)));
    }

    #[test]
    fn external_markers_round_trip() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        let tok = w.arm_external(t(500), 42);
        assert_eq!(w.len(), 0, "external markers are not wheel-resident");
        assert_eq!(w.min_bucket(), None);
        match w.cancel(tok) {
            Cancelled::External(tt, s) => {
                assert_eq!((tt, s), (t(500), 42));
            }
            other => panic!("expected External, got {other:?}"),
        }
        assert_eq!(w.cancel(tok), Cancelled::Stale);
    }

    #[test]
    fn cascade_boundary_single_bucket_apart() {
        // Two timers one bucket apart straddling a level-0 page boundary:
        // the second must cascade from level 1 when the base crosses.
        let mut w = TimerWheel::new();
        let page_end = SLOTS as u64 * BUCKET_NS;
        w.arm(t(page_end - 1), 0, 0); // last bucket of page 0
        w.arm(t(page_end), 1, 1); // first bucket of page 1 → level 1
        assert_eq!(w.min_bucket(), Some(SLOTS as u64 - 1));
        let fired = drain_all(&mut w);
        assert_eq!(
            fired.iter().map(|&(_, _, e)| e).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn lower_bound_never_exceeds_min_bucket() {
        // One population per level plus overflow: the bitmap-only lower
        // bound must be exact for level 0 and <= the exact minimum
        // everywhere (the queue's refill relies on that to skip the
        // cell-list scan).
        let far_times = [
            700 * BUCKET_NS,                             // level 1
            SLOTS as u64 * SLOTS as u64 * BUCKET_NS * 3, // level 2
            SLOTS.pow(3) as u64 * BUCKET_NS * 2,         // overflow
        ];
        for &ns in &far_times {
            let mut w: TimerWheel<u32> = TimerWheel::new();
            assert_eq!(w.min_bucket_lower_bound(), None);
            w.arm(t(ns), 0, 0);
            let lb = w.min_bucket_lower_bound().unwrap();
            let min = w.min_bucket().unwrap();
            assert!(lb <= min, "lower bound {lb} > exact min {min} (ns {ns})");
            // Adding a level-0 timer makes the bound exact again.
            w.arm(t(3 * BUCKET_NS), 1, 1);
            assert_eq!(w.min_bucket_lower_bound(), w.min_bucket());
        }
    }

    #[test]
    fn same_bucket_timers_drain_together() {
        let mut w = TimerWheel::new();
        w.arm(t(5_000), 1, 10);
        w.arm(t(5_100), 0, 11); // same 1024 ns bucket, earlier seq
        let b = w.min_bucket().expect("non-empty");
        w.advance_to(b);
        let mut batch = Vec::new();
        assert_eq!(w.drain_bucket(b, &mut batch), 2);
        assert!(w.is_empty());
    }

    #[test]
    fn advance_far_then_rearm_near() {
        let mut w = TimerWheel::new();
        w.arm(t(2_000_000_000), 0, 0); // 2 s out → level 2
        w.advance_to(bucket(t(1_500_000_000)));
        // Arm close to the new base; it must land ahead of the far timer.
        w.arm(t(1_500_100_000), 1, 1);
        let fired = drain_all(&mut w);
        assert_eq!(
            fired.iter().map(|&(_, _, e)| e).collect::<Vec<_>>(),
            vec![1, 0]
        );
    }

    #[test]
    fn piggybacked_token_rearm_chain_survives_cancel_storm() {
        // Models the wheel-batched delayed-ACK lifecycle: one long-lived
        // logical timer repeatedly fires and is pushed forward by arming a
        // fresh token from the drain handler, while bursts of unrelated
        // timers are armed and cancelled around it. Each deadline must fire
        // exactly once, spent tokens must go stale only after their
        // External marker is released, and the storms must never perturb
        // the live chain.
        let mut w = TimerWheel::new();
        let mut deadline = 10_000u64;
        let mut tok = w.arm(t(deadline), 0, 0u32);
        let mut fired = Vec::new();
        for round in 1..=5u32 {
            // Cancel storm: decoys spread across wheel levels, all gone
            // before the live deadline.
            let decoys: Vec<_> = (0..32u64)
                .map(|i| w.arm(t(deadline + 1 + i * BUCKET_NS * 97), 100 + i, 1_000 + round))
                .collect();
            for d in decoys {
                assert!(matches!(w.cancel(d), Cancelled::Live(_)));
            }
            assert_eq!(w.len(), 1, "only the live token remains");
            // Fire the live token.
            let b = w.min_bucket().expect("live token pending");
            w.advance_to(b);
            let mut batch = Vec::new();
            assert_eq!(w.drain_bucket(b, &mut batch), 1);
            let (tt, _, e) = batch[0];
            assert_eq!(tt, t(deadline), "fired at the armed deadline");
            fired.push(e);
            // A cancel racing the pop still resolves via the External
            // marker; releasing the marker makes the token stale.
            w.release_external(tok);
            assert_eq!(w.cancel(tok), Cancelled::Stale, "spent token is stale");
            // Push the chain forward, as the batched receiver does when a
            // token fires early against a later logical deadline.
            deadline += 40_000 * round as u64;
            tok = w.arm(t(deadline), 0, round);
        }
        assert_eq!(fired, vec![0, 1, 2, 3, 4], "one firing per deadline");
        assert!(matches!(w.cancel(tok), Cancelled::Live(5)));
        assert!(w.is_empty());
    }

    #[test]
    fn clear_invalidates_everything() {
        let mut w = TimerWheel::new();
        let a = w.arm(t(10_000), 0, 0);
        let b = w.arm(t(9_000_000_000), 1, 1);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.min_bucket(), None);
        assert_eq!(w.cancel(a), Cancelled::Stale);
        assert_eq!(w.cancel(b), Cancelled::Stale);
    }

    // ── property tests: wheel vs. a naive BTreeMap oracle ─────────────

    /// Oracle: timer id → (time_ns, seq). Arm/cancel/re-arm interleavings
    /// must leave wheel and oracle with identical surviving timers, fired
    /// in identical (bucket-grouped, (time, seq)-sorted) order.
    #[derive(Default)]
    struct Oracle {
        live: BTreeMap<u32, (u64, u64)>,
    }

    proptest! {
        #[test]
        fn prop_matches_oracle(ops in proptest::collection::vec((0u8..4, 0u64..4_000_000_000u64, 0u32..24), 1..120)) {
            let mut w: TimerWheel<u32> = TimerWheel::new();
            let mut oracle = Oracle::default();
            let mut tokens: BTreeMap<u32, TimerToken> = BTreeMap::new();
            let mut seq = 0u64;
            let mut floor = 0u64; // wheel base may only move forward

            for (op, raw_ns, id) in ops {
                let ns = raw_ns.max(floor * BUCKET_NS);
                match op {
                    // Arm (replacing any live timer with the same id —
                    // the RTO re-arm pattern).
                    0 | 1 => {
                        if let Some(tok) = tokens.remove(&id) {
                            let cancelled = matches!(w.cancel(tok), Cancelled::Live(_));
                            prop_assert_eq!(cancelled, oracle.live.remove(&id).is_some());
                        }
                        let tok = w.arm(SimTime::from_nanos(ns), seq, id);
                        oracle.live.insert(id, (ns, seq));
                        tokens.insert(id, tok);
                        seq += 1;
                    }
                    // Cancel.
                    2 => {
                        if let Some(tok) = tokens.remove(&id) {
                            let cancelled = matches!(w.cancel(tok), Cancelled::Live(_));
                            prop_assert_eq!(cancelled, oracle.live.remove(&id).is_some());
                        }
                    }
                    // Advance to the pending minimum and fire one bucket.
                    _ => {
                        let want_min = oracle.live.values().map(|&(ns, _)| ns >> crate::queue::LANE_BITS).min();
                        prop_assert_eq!(w.min_bucket(), want_min);
                        let lb = w.min_bucket_lower_bound();
                        prop_assert_eq!(lb.is_some(), want_min.is_some());
                        if let (Some(lb), Some(min)) = (lb, want_min) {
                            prop_assert!(lb <= min, "lower bound {} > exact min {}", lb, min);
                        }
                        if let Some(b) = want_min {
                            w.advance_to(b);
                            floor = b + 1;
                            let mut batch = Vec::new();
                            w.drain_bucket(b, &mut batch);
                            batch.sort_unstable_by_key(|&(tt, s, _)| (tt, s));
                            let mut want: Vec<(u64, u64, u32)> = oracle
                                .live
                                .iter()
                                .filter(|&(_, &(ns, _))| ns >> crate::queue::LANE_BITS == b)
                                .map(|(&id, &(ns, s))| (ns, s, id))
                                .collect();
                            want.sort_unstable_by_key(|&(ns, s, _)| (ns, s));
                            let got: Vec<(u64, u64, u32)> = batch
                                .iter()
                                .map(|&(tt, s, id)| (tt.as_nanos(), s, id))
                                .collect();
                            prop_assert_eq!(got, want);
                            oracle.live.retain(|_, &mut (ns, _)| ns >> crate::queue::LANE_BITS != b);
                        }
                    }
                }
            }

            // Drain the rest: survivors fire exactly once, in order.
            let fired = drain_all(&mut w);
            let mut want: Vec<(u64, u64, u32)> = oracle
                .live
                .iter()
                .map(|(&id, &(ns, s))| (ns, s, id))
                .collect();
            want.sort_unstable_by_key(|&(ns, s, _)| (ns >> crate::queue::LANE_BITS, ns, s));
            prop_assert_eq!(fired, want);
        }

        /// Pure arm/fire churn across all horizons keeps (time, seq) order.
        #[test]
        fn prop_fire_order_across_horizons(times in proptest::collection::vec(0u64..200_000_000_000u64, 1..80)) {
            let mut w: TimerWheel<u32> = TimerWheel::new();
            for (i, &ns) in times.iter().enumerate() {
                w.arm(SimTime::from_nanos(ns), i as u64, i as u32);
            }
            let fired = drain_all(&mut w);
            prop_assert_eq!(fired.len(), times.len());
            for pair in fired.windows(2) {
                prop_assert!(
                    (pair[0].0 >> crate::queue::LANE_BITS) <= (pair[1].0 >> crate::queue::LANE_BITS),
                    "bucket order violated"
                );
            }
            let mut seen = vec![false; times.len()];
            for &(ns, s, id) in &fired {
                prop_assert_eq!(ns, times[id as usize]);
                prop_assert_eq!(s, id as u64);
                prop_assert!(!seen[id as usize]);
                seen[id as usize] = true;
            }
        }
    }
}
