//! Simulation time: absolute instants ([`SimTime`]) and spans ([`Duration`]).
//!
//! Both are nanosecond-granularity `u64` newtypes. Nanoseconds give us more
//! than 584 years of simulated time, far beyond any experiment, while still
//! resolving the ~1.2 µs serialization time of a single MTU frame on a
//! 10 Gbps link with plenty of headroom.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulated time, measured in nanoseconds from the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinite" deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative absolute time");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span from an earlier instant, saturating to zero if `earlier` is
    /// actually later (which would indicate a logic bug upstream; we prefer
    /// robust behaviour over a panic in release runs).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` when `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration)
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// Largest representable span.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration");
        Duration((s * 1e9).round() as u64)
    }

    /// Construct from fractional microseconds.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative duration");
        Duration((us * 1e3).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` when the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a float factor, rounding to the nearest nanosecond.
    #[inline]
    pub fn mul_f64(self, f: f64) -> Duration {
        debug_assert!(f >= 0.0, "negative duration factor");
        Duration((self.0 as f64 * f).round() as u64)
    }

    /// Divide by a float, rounding to the nearest nanosecond.
    #[inline]
    pub fn div_f64(self, f: f64) -> Duration {
        debug_assert!(f > 0.0, "non-positive duration divisor");
        Duration((self.0 as f64 / f).round() as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, rhs: Duration) -> Duration {
        Duration(self.0.min(rhs.0))
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, rhs: Duration) -> Duration {
        Duration(self.0.max(rhs.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    /// Panics in debug builds when `rhs > self`; saturates in release.
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        debug_assert!(self >= rhs, "Duration subtraction underflow");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        debug_assert!(*self >= rhs, "Duration subtraction underflow");
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(Duration::from_micros(7), Duration::from_nanos(7_000));
        assert_eq!(Duration::from_secs(2), Duration::from_millis(2_000));
    }

    #[test]
    fn float_roundtrip() {
        let d = Duration::from_secs_f64(1.5e-6);
        assert_eq!(d.as_nanos(), 1_500);
        assert!((d.as_secs_f64() - 1.5e-6).abs() < 1e-15);
        let t = SimTime::from_secs_f64(0.25);
        assert_eq!(t.as_nanos(), 250_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10);
        let d = Duration::from_micros(3);
        assert_eq!(t + d, SimTime::from_micros(13));
        assert_eq!(t - d, SimTime::from_micros(7));
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 4, Duration::from_micros(12));
        assert_eq!(d / 3, Duration::from_micros(1));
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_micros(5);
        let late = SimTime::from_micros(9);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(late.saturating_since(early), Duration::from_micros(4));
        assert_eq!(early.checked_since(late), None);
        assert_eq!(
            Duration::from_nanos(3).saturating_sub(Duration::from_nanos(9)),
            Duration::ZERO
        );
    }

    #[test]
    fn mul_div_f64() {
        let d = Duration::from_micros(100);
        assert_eq!(d.mul_f64(0.5), Duration::from_micros(50));
        assert_eq!(d.div_f64(4.0), Duration::from_micros(25));
        // sqrt-style shrink used by CoDel/ECN#: interval / sqrt(count)
        assert_eq!(d.div_f64(4.0f64.sqrt()), Duration::from_micros(50));
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Duration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Duration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Duration::from_secs(12)), "12.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(Duration::from_nanos(1) < Duration::from_micros(1));
        assert_eq!(
            Duration::from_nanos(5).max(Duration::from_nanos(9)),
            Duration::from_nanos(9)
        );
        assert_eq!(
            Duration::from_nanos(5).min(Duration::from_nanos(9)),
            Duration::from_nanos(5)
        );
    }
}
