//! Runtime invariant layer.
//!
//! [`invariant!`](macro@crate::invariant) is the workspace's single switch
//! for internal-consistency checks on simulation hot paths:
//!
//! - **default debug builds** — behaves like `debug_assert!`, so unit
//!   tests catch violations for free;
//! - **`--release` with default features** — compiles to nothing; the
//!   condition is never evaluated and the optimizer removes the branch;
//! - **`--features strict-invariants`** — checks run even in release,
//!   turning long experiment sweeps into invariant soak tests.
//!
//! Because `cfg!(feature = ...)` is resolved in the crate where the macro
//! *expands*, every workspace crate that uses `invariant!` declares its own
//! `strict-invariants` feature and forwards it to the crates it exercises
//! (see each `Cargo.toml`); enabling the feature at the workspace root
//! lights up the whole graph.

/// Assert an internal invariant on a simulation hot path.
///
/// Same argument forms as [`assert!`]. Active in debug builds and under
/// the `strict-invariants` feature; free in default release builds.
///
/// ```
/// ecnsharp_sim::invariant!(1 + 1 == 2, "arithmetic broke: {}", 1 + 1);
/// ```
#[macro_export]
macro_rules! invariant {
    ($cond:expr $(, $($arg:tt)+)?) => {
        if cfg!(feature = "strict-invariants") {
            assert!($cond $(, $($arg)+)?);
        } else {
            debug_assert!($cond $(, $($arg)+)?);
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn passes_silently() {
        invariant!(true);
        invariant!(2 > 1, "ordering");
    }

    // In a test build either debug_assertions or strict-invariants is in
    // force, so a false invariant must fire.
    #[test]
    #[should_panic(expected = "seeded invariant failure")]
    fn fires_when_checks_are_on() {
        if !cfg!(any(debug_assertions, feature = "strict-invariants")) {
            // Release default-features test build: checks legitimately
            // compiled out — fake the panic so should_panic holds.
            std::panic::panic_any("seeded invariant failure");
        }
        invariant!(1 == 2, "seeded invariant failure");
    }
}
