//! Run supervision: deterministic watchdogs, memory budgets, and the
//! structured error taxonomy they trip into.
//!
//! Long sweeps need three guarantees the bare engine does not give:
//! a pathological scenario must not *hang* (zero-delay event cycles, a
//! stalled barrier window), must not *grow without bound* (event queue,
//! packet-ring overflow, transport reassembly state), and must not take
//! the whole process down with an opaque panic. This module provides the
//! vocabulary for all three:
//!
//! - [`Supervision`] — the knob block threaded into the engine. All
//!   budgets are **event-count or sim-time based** (never wall clock, so
//!   determinism lint R1 holds) and all default to *disarmed*, in which
//!   case the supervised entry points compile down to the exact
//!   unsupervised loops. Armed-but-untriggered runs are byte-identical
//!   to unsupervised ones — a property pinned by test.
//! - [`ProgressGuard`] — the livelock watchdog: counts events popped
//!   without sim-time advancing and trips past a configured budget.
//! - [`MemBreach`] / [`MemComponent`] — a typed report of which bounded
//!   component exceeded its ceiling, carried by
//!   [`SimError::MemBudgetExceeded`].
//! - [`SimError`] — the structured failure taxonomy returned by the
//!   fallible `try_run_*` entry points, serializable to one JSONL line
//!   per failure via [`SimError::to_jsonl`].
//!
//! The guards deliberately live in `sim` (below `net`): the engine core
//! and the shard barrier both consume them, and the experiments crate
//! re-exports them to sweep binaries.

use std::fmt;

/// Which bounded-memory component exceeded its admission ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemComponent {
    /// The central event queue (live scheduled events + armed timers).
    EventQueue,
    /// The pooled switch-ring overflow deques ([`RingArena`] spill space).
    ///
    /// [`RingArena`]: https://docs.rs/
    RingOverflow,
    /// Transport receiver out-of-order reassembly state.
    TransportOoo,
}

impl MemComponent {
    /// Stable machine-readable name (used in JSONL serialization).
    pub fn name(self) -> &'static str {
        match self {
            MemComponent::EventQueue => "event_queue",
            MemComponent::RingOverflow => "ring_overflow",
            MemComponent::TransportOoo => "transport_ooo",
        }
    }
}

/// A typed report of a memory-budget breach: which component, how many
/// live entries it held, the configured ceiling, and (when attributable)
/// the node whose admission crossed the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemBreach {
    /// The component that breached.
    pub component: MemComponent,
    /// Live entries at the moment of the breach.
    pub live: u64,
    /// The configured admission ceiling.
    pub ceiling: u64,
    /// Node whose admission crossed the ceiling, when attributable
    /// (`None` for setup-context admissions).
    pub node: Option<u32>,
}

/// Per-shard diagnostic snapshot carried by [`SimError::BarrierStall`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardDiag {
    /// Shard index.
    pub shard: u32,
    /// The shard's next-event time in nanoseconds (`u64::MAX` = idle).
    pub clock_ns: u64,
    /// Pending events in the shard's queue.
    pub pending: u64,
    /// Oldest pending `(time_ns, tag)` key, when the queue is non-empty.
    pub oldest_key: Option<(u64, u64)>,
}

/// Structured failure taxonomy for supervised runs.
///
/// Returned by the fallible `try_run_until_idle` /
/// `try_run_sharded_until_idle` entry points; the infallible APIs
/// delegate and treat any error as fatal. Serializes to one JSONL line
/// per failure via [`SimError::to_jsonl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The engine popped more same-instant events than the configured
    /// budget without sim-time advancing: a zero-delay event cycle.
    Livelock {
        /// Sim-time (ns) at which the cycle spun.
        time_ns: u64,
        /// Events processed at that instant when the guard tripped.
        events_at_instant: u64,
        /// The configured budget (events per instant).
        budget: u64,
        /// Pending events in the queue at trip time.
        pending: u64,
        /// Oldest pending `(time_ns, tag)` key, when non-empty.
        oldest_key: Option<(u64, u64)>,
    },
    /// No shard advanced the global minimum next-event time across the
    /// configured number of full barrier-window exchanges.
    BarrierStall {
        /// Consecutive windows with a frozen global minimum.
        rounds: u64,
        /// The configured round budget.
        budget: u64,
        /// Per-shard clocks, pending counts, and oldest event keys.
        shards: Vec<ShardDiag>,
    },
    /// A bounded-memory component exceeded its admission ceiling.
    MemBudgetExceeded {
        /// The typed breach report.
        breach: MemBreach,
        /// Sim-time (ns) of the breaching admission.
        time_ns: u64,
    },
    /// A shard worker thread panicked; the panic payload is captured so
    /// the sweep supervisor can journal and retry the point.
    WorkerPanic {
        /// The stringified panic payload, prefixed with point identity
        /// when raised through the sweep supervisor.
        msg: String,
    },
    /// A runtime invariant was violated in supervised mode.
    InvariantViolation {
        /// Description of the violated invariant.
        msg: String,
    },
}

impl SimError {
    /// Stable machine-readable kind tag (the JSONL `"type"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Livelock { .. } => "Livelock",
            SimError::BarrierStall { .. } => "BarrierStall",
            SimError::MemBudgetExceeded { .. } => "MemBudgetExceeded",
            SimError::WorkerPanic { .. } => "WorkerPanic",
            SimError::InvariantViolation { .. } => "InvariantViolation",
        }
    }

    /// Whether a sweep point failing with this error is worth one bounded
    /// same-seed retry. Deterministic guard trips ([`SimError::Livelock`],
    /// [`SimError::BarrierStall`], [`SimError::MemBudgetExceeded`]) will
    /// reproduce byte-identically, so only worker panics — which can stem
    /// from environmental causes like thread-spawn failure — retry.
    pub fn retryable(&self) -> bool {
        matches!(self, SimError::WorkerPanic { .. })
    }

    /// Serialize to exactly one JSONL line (no trailing newline).
    ///
    /// Hand-rolled — the workspace deliberately carries no serde — with
    /// the `"type"` discriminant first so log scrapers can dispatch on a
    /// prefix match.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"type\":\"");
        s.push_str(self.kind());
        s.push('"');
        match self {
            SimError::Livelock {
                time_ns,
                events_at_instant,
                budget,
                pending,
                oldest_key,
            } => {
                push_u64(&mut s, "time_ns", *time_ns);
                push_u64(&mut s, "events_at_instant", *events_at_instant);
                push_u64(&mut s, "budget", *budget);
                push_u64(&mut s, "pending", *pending);
                push_key(&mut s, "oldest_key", *oldest_key);
            }
            SimError::BarrierStall {
                rounds,
                budget,
                shards,
            } => {
                push_u64(&mut s, "rounds", *rounds);
                push_u64(&mut s, "budget", *budget);
                s.push_str(",\"shards\":[");
                for (i, d) in shards.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str("{\"shard\":");
                    s.push_str(&d.shard.to_string());
                    push_u64(&mut s, "clock_ns", d.clock_ns);
                    push_u64(&mut s, "pending", d.pending);
                    push_key(&mut s, "oldest_key", d.oldest_key);
                    s.push('}');
                }
                s.push(']');
            }
            SimError::MemBudgetExceeded { breach, time_ns } => {
                push_str(&mut s, "component", breach.component.name());
                push_u64(&mut s, "live", breach.live);
                push_u64(&mut s, "ceiling", breach.ceiling);
                match breach.node {
                    Some(n) => push_u64(&mut s, "node", u64::from(n)),
                    None => s.push_str(",\"node\":null"),
                }
                push_u64(&mut s, "time_ns", *time_ns);
            }
            SimError::WorkerPanic { msg } => push_str(&mut s, "msg", msg),
            SimError::InvariantViolation { msg } => push_str(&mut s, "msg", msg),
        }
        s.push('}');
        s
    }
}

/// Append `,"key":N` to a JSON object under construction.
fn push_u64(s: &mut String, key: &str, v: u64) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&v.to_string());
}

/// Append `,"key":"escaped"` to a JSON object under construction.
fn push_str(s: &mut String, key: &str, v: &str) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":\"");
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                s.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let d = (code >> shift) & 0xF;
                    s.push(char::from_digit(d, 16).unwrap_or('0'));
                }
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Append `,"key":[t,tag]` or `,"key":null`.
fn push_key(s: &mut String, key: &str, v: Option<(u64, u64)>) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    match v {
        Some((t, tag)) => {
            s.push('[');
            s.push_str(&t.to_string());
            s.push(',');
            s.push_str(&tag.to_string());
            s.push(']');
        }
        None => s.push_str("null"),
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Livelock {
                time_ns,
                events_at_instant,
                budget,
                ..
            } => write!(
                f,
                "livelock: {events_at_instant} events at t={time_ns}ns \
                 without time advancing (budget {budget})"
            ),
            SimError::BarrierStall {
                rounds,
                budget,
                shards,
            } => write!(
                f,
                "barrier stall: global min frozen for {rounds} window \
                 rounds (budget {budget}, {} shards)",
                shards.len()
            ),
            SimError::MemBudgetExceeded { breach, time_ns } => write!(
                f,
                "memory budget exceeded: {} held {} live entries \
                 (ceiling {}) at t={time_ns}ns",
                breach.component.name(),
                breach.live,
                breach.ceiling
            ),
            SimError::WorkerPanic { msg } => write!(f, "worker panic: {msg}"),
            SimError::InvariantViolation { msg } => {
                write!(f, "invariant violation: {msg}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The livelock watchdog: counts events processed without sim-time
/// advancing and trips past a configured per-instant budget.
///
/// Purely event-count based — no wall clock (lint R1) — and observation
/// only: it never perturbs scheduling, so armed-but-untriggered runs are
/// byte-identical to unguarded ones.
#[derive(Debug, Clone, Copy)]
pub struct ProgressGuard {
    budget: u64,
    last_ns: u64,
    at_instant: u64,
}

impl ProgressGuard {
    /// A guard that trips after `budget` events at one sim-time instant.
    pub fn new(budget: u64) -> Self {
        ProgressGuard {
            budget,
            last_ns: u64::MAX,
            at_instant: 0,
        }
    }

    /// Record one processed event at sim-time `now_ns`. Returns `true`
    /// when the per-instant budget is exceeded (the caller should stop
    /// and report [`SimError::Livelock`]).
    #[inline]
    pub fn on_event(&mut self, now_ns: u64) -> bool {
        if now_ns == self.last_ns {
            self.at_instant += 1;
            self.at_instant > self.budget
        } else {
            self.last_ns = now_ns;
            self.at_instant = 1;
            false
        }
    }

    /// Events observed at the current instant (for diagnostics).
    pub fn events_at_instant(&self) -> u64 {
        self.at_instant
    }

    /// The configured per-instant budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

/// Default livelock budget: events the engine may process at a single
/// sim-time instant before the run is declared livelocked. Generously
/// above anything a real topology produces (a full fat-tree k=16 window
/// batch stays orders of magnitude below this) while still bounding a
/// zero-delay cycle to well under a second of wall time.
pub const DEFAULT_LIVELOCK_BUDGET: u64 = 1_000_000;

/// Default barrier-stall budget in window rounds. The conservative
/// window protocol guarantees the global minimum next-event time
/// strictly increases every healthy round (see CONCURRENCY.md), so any
/// repeat is already pathological; a handful of rounds of slack keeps
/// the diagnostic cheap to compute without false positives.
pub const DEFAULT_STALL_ROUNDS: u64 = 8;

/// Default admission ceiling for live events (queue + timers) per
/// engine instance, and for pooled-ring overflow entries per switch.
/// Sized so a healthy full-scale run never approaches it while a
/// runaway still fails fast long before the OOM killer.
pub const DEFAULT_MEM_CEILING: u64 = 50_000_000;

/// Supervision configuration threaded into the engine and the shard
/// barrier. `Default` is fully disarmed (all guards off, zero cost);
/// [`Supervision::armed`] arms every watchdog at its default budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Supervision {
    /// Livelock budget: max events at one sim-time instant
    /// (`None` = guard off).
    pub livelock_budget: Option<u64>,
    /// Barrier-stall budget: window rounds with a frozen global minimum
    /// (`None` = guard off).
    pub stall_rounds: Option<u64>,
    /// Event-queue admission ceiling in live events (`None` = unbounded).
    pub event_ceiling: Option<u64>,
    /// Pooled-ring overflow ceiling in live spilled packets per switch
    /// (`None` = unbounded).
    pub ring_overflow_ceiling: Option<u64>,
    /// Drill: freeze every shard's window processing so the barrier-stall
    /// detector trips. Only honoured when `stall_rounds` is armed.
    pub inject_stall: bool,
}

impl Supervision {
    /// Every watchdog armed at its default budget; drills off.
    pub fn armed() -> Self {
        Supervision {
            livelock_budget: Some(DEFAULT_LIVELOCK_BUDGET),
            stall_rounds: Some(DEFAULT_STALL_ROUNDS),
            event_ceiling: Some(DEFAULT_MEM_CEILING),
            ring_overflow_ceiling: Some(DEFAULT_MEM_CEILING),
            inject_stall: false,
        }
    }

    /// `true` when no guard or drill is active — supervised entry points
    /// take the exact unsupervised fast path in this state.
    pub fn is_disarmed(&self) -> bool {
        self.livelock_budget.is_none()
            && self.stall_rounds.is_none()
            && self.event_ceiling.is_none()
            && self.ring_overflow_ceiling.is_none()
            && !self.inject_stall
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_guard_trips_only_past_budget_at_one_instant() {
        let mut g = ProgressGuard::new(3);
        assert!(!g.on_event(100));
        assert!(!g.on_event(100));
        assert!(!g.on_event(100));
        assert!(g.on_event(100)); // 4th event at t=100 exceeds budget 3
                                  // Advancing time resets the counter.
        let mut g = ProgressGuard::new(3);
        for t in [100, 100, 100, 200, 200, 200] {
            assert!(!g.on_event(t));
        }
        assert!(g.on_event(200));
    }

    #[test]
    fn default_supervision_is_disarmed_and_armed_is_not() {
        assert!(Supervision::default().is_disarmed());
        assert!(!Supervision::armed().is_disarmed());
        let s = Supervision {
            inject_stall: true,
            ..Supervision::default()
        };
        assert!(!s.is_disarmed());
    }

    #[test]
    fn retryable_only_for_worker_panics() {
        assert!(SimError::WorkerPanic { msg: "x".into() }.retryable());
        assert!(!SimError::Livelock {
            time_ns: 0,
            events_at_instant: 1,
            budget: 1,
            pending: 0,
            oldest_key: None,
        }
        .retryable());
        assert!(!SimError::MemBudgetExceeded {
            breach: MemBreach {
                component: MemComponent::EventQueue,
                live: 2,
                ceiling: 1,
                node: None,
            },
            time_ns: 5,
        }
        .retryable());
    }

    #[test]
    fn jsonl_is_one_line_with_type_first() {
        let errs = [
            SimError::Livelock {
                time_ns: 42,
                events_at_instant: 11,
                budget: 10,
                pending: 3,
                oldest_key: Some((42, 7)),
            },
            SimError::BarrierStall {
                rounds: 9,
                budget: 8,
                shards: vec![
                    ShardDiag {
                        shard: 0,
                        clock_ns: 100,
                        pending: 2,
                        oldest_key: Some((100, 1)),
                    },
                    ShardDiag {
                        shard: 1,
                        clock_ns: u64::MAX,
                        pending: 0,
                        oldest_key: None,
                    },
                ],
            },
            SimError::MemBudgetExceeded {
                breach: MemBreach {
                    component: MemComponent::RingOverflow,
                    live: 9,
                    ceiling: 8,
                    node: Some(4),
                },
                time_ns: 77,
            },
            SimError::WorkerPanic {
                msg: "line\nbreak \"quoted\"".into(),
            },
            SimError::InvariantViolation { msg: "bad".into() },
        ];
        for e in &errs {
            let line = e.to_jsonl();
            assert!(!line.contains('\n'), "not one line: {line}");
            assert!(
                line.starts_with(&format!("{{\"type\":\"{}\"", e.kind())),
                "type not first: {line}"
            );
            assert!(line.ends_with('}'), "not an object: {line}");
        }
        // Spot-check escaping survives round-trip visually.
        let p = errs[3].to_jsonl();
        assert!(p.contains("line\\nbreak \\\"quoted\\\""), "{p}");
        // Null node serializes as null, Some as a number.
        assert!(errs[2].to_jsonl().contains("\"node\":4"));
    }

    #[test]
    fn display_is_human_readable() {
        let e = SimError::BarrierStall {
            rounds: 9,
            budget: 8,
            shards: vec![],
        };
        let s = format!("{e}");
        assert!(s.contains("barrier stall"), "{s}");
        assert!(s.contains('9'), "{s}");
    }
}
