//! Deterministic pseudo-random number generation.
//!
//! Experiments must be bit-reproducible across machines and across releases
//! of this workspace, so we implement xoshiro256** (Blackman & Vigna) with a
//! SplitMix64 seeder instead of depending on the `rand` crate, whose stream
//! definitions may change between major versions. The generator is tiny,
//! fast, and passes BigCrush.

use crate::time::Duration;

/// Deterministic xoshiro256** PRNG seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed. Identical seeds always yield
    /// identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child generator; used to give each component
    /// (workload generator, ECMP hasher, …) its own stream so that adding
    /// randomness consumption in one place does not perturb the others.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift rejection
    /// method (unbiased).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= lo.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean (used for Poisson
    /// inter-arrival times).
    #[inline]
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // 1 - f64() is in (0, 1], avoiding ln(0).
        -mean * (1.0 - self.f64()).ln()
    }

    /// Exponentially distributed duration with the given mean.
    #[inline]
    pub fn exp_duration(&mut self, mean: Duration) -> Duration {
        Duration::from_secs_f64(self.exp_f64(mean.as_secs_f64()))
    }

    /// Standard normal deviate (Marsaglia polar method).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = self.range_f64(-1.0, 1.0);
            let v = self.range_f64(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Log-normally distributed value parameterized by the *target*
    /// arithmetic mean and standard deviation (not the underlying normal's
    /// µ/σ), which is what delay-model calibration wants.
    pub fn lognormal_mean_std(&mut self, mean: f64, std: f64) -> f64 {
        debug_assert!(mean > 0.0 && std >= 0.0);
        // std == 0.0 is a caller-supplied degenerate-distribution sentinel
        // (constant value), not a computed quantity.
        #[allow(clippy::float_cmp)] // lint: allow(float-cmp) exact degenerate-σ sentinel
        if std == 0.0 {
            return mean;
        }
        let cv2 = (std / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        (mu + sigma2.sqrt() * self.normal()).exp()
    }

    /// Pick a uniformly random element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Stateless 64-bit mix suitable for ECMP-style flow hashing: deterministic,
/// well-distributed, and independent of the RNG streams.
#[inline]
pub fn hash_mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic multiply-rotate hasher for hot-path *lookup* maps.
///
/// Unlike the std `RandomState`, the seed is a compile-time constant, so a
/// [`DetMap`]'s internal layout is identical across processes — and unlike
/// SipHash it is a handful of arithmetic ops per word, which matters on
/// per-event paths (the engine's timer-token table re-hashes on every
/// RTO re-arm). Collision quality comes from the same finalizer as
/// [`hash_mix`]. Not a defense against adversarial keys; the simulator
/// hashes its own ids only.
#[derive(Default)]
pub struct DetHasher {
    state: u64,
}

impl std::hash::Hasher for DetHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = (self.state.rotate_left(5) ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // The table derives its control bytes from the high bits, so run
        // the avalanche finalizer over the raw multiply-rotate state.
        hash_mix(self.state)
    }
}

/// [`BuildHasher`](std::hash::BuildHasher) for [`DetHasher`] (zero-sized,
/// constant seed).
#[derive(Default, Clone, Copy)]
pub struct DetState;

impl std::hash::BuildHasher for DetState {
    type Hasher = DetHasher;

    #[inline]
    fn build_hasher(&self) -> DetHasher {
        DetHasher::default()
    }
}

/// A hash map with the deterministic [`DetState`] hasher, for keyed-lookup
/// tables on per-event paths. Iteration order is still arbitrary (it
/// follows the table layout, not insertion or key order) — callers must
/// only ever look up by key, never iterate; anything that walks entries
/// belongs in a `BTreeMap`.
#[allow(clippy::disallowed_types)] // deterministic DetState hasher, not the default — see lint waiver below
                                   // lint: allow(hash-collections) deterministic constant-seed hasher; alias is for keyed lookup only, iteration stays banned at call sites
pub type DetMap<K, V> = std::collections::HashMap<K, V, DetState>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_unbiased_small_range() {
        let mut r = Rng::seed_from_u64(9);
        let mut counts = [0u32; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[r.below(5) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.2).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn exp_mean_converges() {
        let mut r = Rng::seed_from_u64(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp_f64(3.5)).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seed_from_u64(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn lognormal_calibration() {
        let mut r = Rng::seed_from_u64(17);
        let n = 300_000;
        let xs: Vec<f64> = (0..n).map(|_| r.lognormal_mean_std(39.3, 12.2)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 39.3).abs() < 0.3, "mean {mean}");
        assert!((var.sqrt() - 12.2).abs() < 0.3, "std {}", var.sqrt());
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exp_duration_positive() {
        let mut r = Rng::seed_from_u64(19);
        let d = r.exp_duration(Duration::from_micros(100));
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from_u64(23);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn fork_independence() {
        let mut parent = Rng::seed_from_u64(31);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn hash_mix_spreads() {
        // adjacent inputs should map far apart (no trivial linearity)
        let a = hash_mix(1);
        let b = hash_mix(2);
        assert_ne!(a & 0xFFFF, b & 0xFFFF);
    }
}
