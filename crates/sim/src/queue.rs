//! The event queue at the heart of the discrete-event engine.
//!
//! Events are ordered by `(time, key)`. With [`EventQueue::schedule`] the
//! key is an internal sequence counter, so among events scheduled for the
//! same instant insertion order wins (FIFO). With
//! [`EventQueue::schedule_tagged`] the caller supplies the key — the
//! sharded engine derives it from event provenance so the total order is
//! independent of how the network is partitioned. Either way the total
//! order makes every simulation run deterministic — a property the
//! integration tests assert end-to-end (same seed ⇒ bit-identical flow
//! completion times).
//!
//! # Implementation: calendar lanes in front of a heap
//!
//! Almost every event a packet simulator schedules lands a few link-delays
//! into the future (serialization ≈ 1.2 µs, propagation 1–5 µs); only RTO
//! timers and experiment bookkeeping reach further out. The queue exploits
//! that skew with a calendar-queue front end:
//!
//! - the near future (`LANE_COUNT` buckets of `1 << LANE_BITS` ns each,
//!   ≈ 1 ms of horizon) is a ring of *lanes*; scheduling into it is an
//!   O(1) `Vec::push`, and an occupancy bitmap finds the next non-empty
//!   lane with a couple of word scans;
//! - the mid future (a second ring of `OUTER_COUNT` slots, each spanning
//!   `1 << OUTER_SHIFT` inner buckets ≈ 65.5 µs, together ≈ 67 ms of
//!   horizon) parks events unsorted; a refill *cascades* the earliest
//!   outer slot into the inner lanes before the cursor can reach it, so
//!   multi-RTT timers (RTOs at 5–10 ms, experiment sampling) stay O(1)
//!   per schedule instead of spilling to the heap;
//! - events beyond both horizons fall back to a [`BinaryHeap`] (counted
//!   as [`QueuePerf::heap_spills`]);
//! - the lane whose bucket is being drained (the *current* batch) is kept
//!   sorted by `(time, seq)` descending, so popping the earliest event is
//!   a `Vec::pop`. When the batch empties, the next bucket is chosen as
//!   the earlier of the next occupied lane and the heap head; heap events
//!   that have come inside that bucket are merged in before the sort.
//!
//! The observable order is exactly the `(time, seq)` total order of the
//! plain-heap implementation — the `strict-invariants` feature rechecks it
//! on every pop — and the unit + property tests below drive lane
//! boundaries, cursor wraparound and the heap fallback explicitly.

use crate::time::SimTime;
use crate::wheel::{Cancelled, TimerToken, TimerWheel};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of the lane width in nanoseconds (1024 ns per lane). Shared with
/// the timer wheel, whose level-0 slots are exactly one lane wide.
pub(crate) const LANE_BITS: u32 = 10;
/// Number of near-future lanes (must be a power of two).
const LANE_COUNT: usize = 1024;
const LANE_MASK: u64 = LANE_COUNT as u64 - 1;
/// Words in the lane-occupancy bitmap.
const WORDS: usize = LANE_COUNT / 64;

/// log2 of inner buckets per outer slot: each outer slot spans 64 inner
/// buckets, making an outer lane `1 << (LANE_BITS + OUTER_SHIFT)` ns
/// ≈ 65.5 µs wide.
const OUTER_SHIFT: u32 = 6;
/// Number of outer slots (must be a power of two). With 65.5 µs lanes the
/// outer horizon reaches ≈ 67 ms past the cursor — multi-RTT timers and
/// experiment bookkeeping land here instead of the [`BinaryHeap`].
const OUTER_COUNT: usize = 1024;
const OUTER_MASK: u64 = OUTER_COUNT as u64 - 1;
/// Words in the outer-occupancy bitmap.
const OUTER_WORDS: usize = OUTER_COUNT / 64;

/// Absolute calendar bucket of a timestamp.
#[inline]
fn bucket(t: SimTime) -> u64 {
    t.as_nanos() >> LANE_BITS
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Scheduling/pop counters of one [`EventQueue`].
///
/// Maintained unconditionally — each is a single integer add (plus one
/// compare for the peak) per operation, noise next to the queue work
/// itself — and never read by the engine, so whether a caller looks at
/// them cannot perturb a run. The determinism regression test in
/// `tests/` asserts exactly that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueuePerf {
    /// Events scheduled over the queue's lifetime.
    pub pushed: u64,
    /// Events popped over the queue's lifetime.
    pub popped: u64,
    /// Highest number of simultaneously pending events observed.
    pub peak_pending: u64,
    /// Timer arms, including re-arms (see [`EventQueue::rearm_timer`]).
    pub timers_armed: u64,
    /// Live timers explicitly cancelled before firing.
    pub timers_cancelled: u64,
    /// Timers that reached their deadline and were delivered as events.
    pub timers_fired: u64,
    /// Live timers displaced by a re-arm — each one a stale event that an
    /// epoch-filtering design would have pushed through (and popped from)
    /// the queue.
    pub timers_stale_suppressed: u64,
    /// Events scheduled beyond *both* calendar horizons (inner ≈ 1 ms,
    /// outer ≈ 67 ms) that fell back to the `BinaryHeap`. The second-wheel
    /// win is observable here: near-zero means no `O(log n)` heap traffic.
    pub heap_spills: u64,
}

/// Sub-run bookkeeping for one lane: how many ascending `(time, seq)`
/// insertion runs the slot holds and where the first one ends, so the
/// refill sort can be skipped (one run) or replaced by a linear two-run
/// merge. Same-tick bursts — incast fan-in scheduling hundreds of events
/// at one instant — are the single-run common case.
#[derive(Debug, Clone, Copy)]
struct LaneMeta {
    /// Ascending insertion runs currently in the slot.
    runs: u32,
    /// Length of the first run (the split point for the two-run merge).
    first_run_len: u32,
    /// `(time, seq)` of the most recently pushed entry.
    last: (SimTime, u64),
}

impl Default for LaneMeta {
    fn default() -> Self {
        LaneMeta {
            runs: 0,
            first_run_len: 0,
            last: (SimTime::ZERO, 0),
        }
    }
}

/// One calendar slot: its pending entries plus the run bookkeeping,
/// co-located so the per-schedule slot access touches a single cache
/// region (the `Vec` header and the meta share a line).
struct Lane<E> {
    entries: Vec<(SimTime, u64, E)>,
    meta: LaneMeta,
}

impl<E> Default for Lane<E> {
    fn default() -> Self {
        Lane {
            entries: Vec::new(),
            meta: LaneMeta::default(),
        }
    }
}

// Cache-layout pin (companion to the Send/Sync proofs in `lib.rs`): a
// lane header — `Vec` header plus run bookkeeping — must fit one 64-byte
// cache line, or the co-location argument above stops holding and every
// schedule touches two lines. Checked against a word-sized payload; the
// header size is payload-independent.
const _: () = assert!(std::mem::size_of::<Lane<u64>>() <= 64);

/// A time-ordered event queue with FIFO tie-breaking.
pub struct EventQueue<E> {
    /// Entries of the bucket currently being drained (`cursor`), sorted
    /// by `(time, seq)` **descending** so the earliest is at the back.
    current: Vec<(SimTime, u64, E)>,
    /// Events scheduled *into* the draining bucket mid-drain (the ACK
    /// turnaround pattern: a sub-lane tx-done lands in the same bucket).
    /// A sorted-`Vec::insert` into `current` would memmove O(batch) per
    /// arrival, so these overlay entries live in a small min-heap instead;
    /// [`pop`] takes whichever of `current.last()` / `inbox.peek()` is
    /// earlier, preserving the exact `(time, seq)` total order.
    ///
    /// [`pop`]: EventQueue::pop
    inbox: BinaryHeap<Entry<E>>,
    /// Absolute bucket index `current` belongs to. All pending lane
    /// entries have strictly greater buckets; the heap head's bucket is
    /// also strictly greater whenever `current` is non-empty.
    cursor: u64,
    /// Near-future ring: slot `b & LANE_MASK` holds bucket `b`'s events
    /// (unsorted, with per-slot run bookkeeping) for buckets within
    /// `(cursor, cursor + LANE_COUNT)`.
    lanes: Vec<Lane<E>>,
    /// One bit per lane slot: slot non-empty.
    occupied: [u64; WORDS],
    /// Total entries across all lanes (excluding `current` and the heap).
    lanes_len: usize,
    /// Second, coarser calendar horizon: slot `ob & OUTER_MASK` holds the
    /// (unsorted) events of outer bucket `ob = inner_bucket >> OUTER_SHIFT`
    /// for outer buckets within `(cursor >> OUTER_SHIFT, + OUTER_COUNT)`.
    /// Slots cascade into the inner lanes at refill time, before the
    /// cursor can reach them, so the events pop in exact `(time, key)`
    /// order — the outer ring only changes *where they wait*, never the
    /// observable order.
    outer: Vec<Vec<(SimTime, u64, E)>>,
    /// One bit per outer slot: slot non-empty.
    outer_occ: [u64; OUTER_WORDS],
    /// Total entries across all outer slots.
    outer_len: usize,
    /// Far-future fallback (beyond both calendar horizons at scheduling
    /// time); each push here is counted as a [`QueuePerf::heap_spills`].
    heap: BinaryHeap<Entry<E>>,
    /// Cancellable timers (see [`EventQueue::schedule_timer`]); shares the
    /// global sequence counter so fired timers replay in exactly the
    /// `(time, seq)` order a plain `schedule` would have given them.
    wheel: TimerWheel<E>,
    /// Scratch buffers reused by the two-run refill merge.
    scratch: Vec<(SimTime, u64, E)>,
    spare: Vec<(SimTime, u64, E)>,
    next_seq: u64,
    now: SimTime,
    len: usize,
    perf: QueuePerf,
    /// Admission ceiling on live entries (events + armed timers);
    /// `usize::MAX` disarms the guard. Crossing it latches
    /// `mem_breached` — scheduling is never perturbed, so an
    /// armed-but-untriggered ceiling is observation-only.
    mem_ceiling: usize,
    /// Sticky flag: the ceiling was crossed at some admission.
    mem_breached: bool,
    /// `(time, seq)` of the most recent pop, for the strict-invariants
    /// total-order check: pop times never decrease, and among equal times
    /// sequence numbers strictly increase (FIFO).
    last_popped: Option<(SimTime, u64)>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue positioned at t = 0.
    pub fn new() -> Self {
        EventQueue {
            current: Vec::new(),
            inbox: BinaryHeap::new(),
            cursor: 0,
            lanes: (0..LANE_COUNT).map(|_| Lane::default()).collect(),
            occupied: [0; WORDS],
            lanes_len: 0,
            outer: (0..OUTER_COUNT).map(|_| Vec::new()).collect(),
            outer_occ: [0; OUTER_WORDS],
            outer_len: 0,
            heap: BinaryHeap::new(),
            wheel: TimerWheel::new(),
            scratch: Vec::new(),
            spare: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            len: 0,
            perf: QueuePerf::default(),
            mem_ceiling: usize::MAX,
            mem_breached: false,
            last_popped: None,
        }
    }

    /// Arm (or, with `None`, disarm) the admission ceiling on live
    /// entries. Crossing the ceiling latches a breach readable through
    /// [`EventQueue::mem_breach`]; scheduling itself is never perturbed,
    /// which keeps armed-but-untriggered runs byte-identical.
    pub fn set_mem_ceiling(&mut self, ceiling: Option<u64>) {
        self.mem_ceiling = match ceiling {
            Some(c) => usize::try_from(c).unwrap_or(usize::MAX),
            None => usize::MAX,
        };
        self.mem_breached = false;
    }

    /// The latched `(live, ceiling)` pair of the first admission that
    /// crossed the ceiling, if any. `live` reports the current count —
    /// by the fail-fast contract the caller stops within a few events of
    /// the breach, so it stays within noise of the crossing value.
    pub fn mem_breach(&self) -> Option<(u64, u64)> {
        if self.mem_breached {
            Some((self.len as u64, self.mem_ceiling as u64))
        } else {
            None
        }
    }

    /// Create an empty queue with room for `n` in-flight events in the
    /// drain batch before reallocating.
    pub fn with_capacity(n: usize) -> Self {
        let mut q = Self::new();
        q.current.reserve(n);
        q
    }

    /// Current simulation time: the timestamp of the last popped event (or
    /// zero before any pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Scheduling/pop/peak counters so far (see [`QueuePerf`]).
    #[inline]
    pub fn perf(&self) -> QueuePerf {
        self.perf
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// The tie-break key is drawn from the queue's internal sequence
    /// counter, so same-instant events pop in insertion order (FIFO).
    ///
    /// # Panics
    /// Debug-panics when scheduling into the past; the engine never rewinds.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.schedule_tagged(at, seq, event);
    }

    /// Schedule `event` at `at` with a **caller-supplied** tie-break key.
    ///
    /// Events pop in `(time, key)` order. This is the hook the sharded
    /// engine uses for its canonical content-derived tags (see
    /// `ecnsharp-net`): when the key is a pure function of the simulation
    /// state that produced the event, the pop order is independent of how
    /// the simulation is partitioned, which is what makes sharded replay
    /// byte-identical to serial replay.
    ///
    /// Callers own key discipline: keys must be unique per queue among
    /// in-flight events (the strict-invariants total-order check rejects
    /// duplicates at equal times), and a queue should not interleave
    /// tagged and untagged scheduling for the same run — the internal
    /// sequence counter knows nothing about caller tags.
    ///
    /// ```
    /// use ecnsharp_sim::{EventQueue, SimTime};
    /// let mut q: EventQueue<&str> = EventQueue::new();
    /// let t = SimTime::from_micros(1);
    /// q.schedule_tagged(t, 7, "late");
    /// q.schedule_tagged(t, 3, "early");
    /// assert_eq!(q.pop().unwrap().1, "early"); // (time, key) order, not insertion order
    /// ```
    ///
    /// # Panics
    /// Debug-panics when scheduling into the past; the engine never rewinds.
    pub fn schedule_tagged(&mut self, at: SimTime, key: u64, event: E) {
        crate::invariant!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = key;
        let b = bucket(at);
        if b <= self.cursor {
            // The bucket being drained (b < cursor is impossible for
            // at >= now; handled identically for robustness): overlay
            // heap, merged with the sorted batch at pop time.
            self.inbox.push(Entry {
                time: at,
                seq,
                event,
            });
        } else if b - self.cursor < LANE_COUNT as u64 {
            self.insert_lane(b, at, seq, event);
        } else if (b >> OUTER_SHIFT) - (self.cursor >> OUTER_SHIFT) < OUTER_COUNT as u64 {
            // Second horizon: outer slots are unsorted parking space; the
            // refill cascade moves them into inner lanes before they come
            // due, so no per-schedule ordering work happens here at all.
            let slot = ((b >> OUTER_SHIFT) & OUTER_MASK) as usize;
            if self.outer[slot].is_empty() {
                self.outer_occ[slot >> 6] |= 1u64 << (slot & 63);
            }
            self.outer[slot].push((at, seq, event));
            self.outer_len += 1;
        } else {
            self.heap.push(Entry {
                time: at,
                seq,
                event,
            });
            self.perf.heap_spills += 1;
        }
        self.len += 1;
        self.perf.pushed += 1;
        if self.len as u64 > self.perf.peak_pending {
            self.perf.peak_pending = self.len as u64;
        }
        if self.len > self.mem_ceiling {
            self.mem_breached = true;
        }
    }

    /// Insert an entry into its inner lane, maintaining the occupancy bit
    /// and the per-slot run bookkeeping. Caller guarantees
    /// `cursor < b < cursor + LANE_COUNT`; `len`/perf attribution stays
    /// with the caller (the refill cascade moves already-counted entries).
    #[inline]
    fn insert_lane(&mut self, b: u64, at: SimTime, seq: u64, event: E) {
        let slot = (b & LANE_MASK) as usize;
        let lane = &mut self.lanes[slot];
        if lane.entries.is_empty() {
            self.occupied[slot >> 6] |= 1u64 << (slot & 63);
            lane.meta = LaneMeta {
                runs: 1,
                first_run_len: 1,
                last: (at, seq),
            };
        } else {
            let m = &mut lane.meta;
            if (at, seq) >= m.last {
                if m.runs == 1 {
                    m.first_run_len += 1;
                }
            } else {
                m.runs += 1;
            }
            m.last = (at, seq);
        }
        lane.entries.push((at, seq, event));
        self.lanes_len += 1;
    }

    /// Arm a cancellable timer firing `event` at `at`, returning a handle
    /// for [`cancel_timer`]/[`rearm_timer`].
    ///
    /// Timers are ordinary events once they fire: they draw from the same
    /// sequence counter at arm time, so replay order is byte-identical to
    /// a design that `schedule`s the timer and lazily discards stale pops
    /// — except the stale pops never happen.
    ///
    /// [`cancel_timer`]: EventQueue::cancel_timer
    /// [`rearm_timer`]: EventQueue::rearm_timer
    ///
    /// # Panics
    /// Debug-panics when arming into the past; the engine never rewinds.
    pub fn schedule_timer(&mut self, at: SimTime, event: E) -> TimerToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.schedule_timer_tagged(at, seq, event)
    }

    /// Arm a cancellable timer with a **caller-supplied** tie-break key —
    /// the timer counterpart of [`schedule_tagged`], with the same key
    /// discipline and the same cancel/re-arm semantics as
    /// [`schedule_timer`].
    ///
    /// [`schedule_tagged`]: EventQueue::schedule_tagged
    /// [`schedule_timer`]: EventQueue::schedule_timer
    ///
    /// # Panics
    /// Debug-panics when arming into the past; the engine never rewinds.
    pub fn schedule_timer_tagged(&mut self, at: SimTime, key: u64, event: E) -> TimerToken {
        crate::invariant!(
            at >= self.now,
            "arming a timer in the past: {at} < {}",
            self.now
        );
        let seq = key;
        let b = bucket(at);
        let tok = if b <= self.cursor {
            // Expiry inside the bucket being drained (sub-lane timers,
            // e.g. zero-delay deadlines): the payload goes straight into
            // the drain overlay; the wheel only keeps a cancel marker.
            self.inbox.push(Entry {
                time: at,
                seq,
                event,
            });
            // Counted as fired on delivery to the pop path (mirroring the
            // refill drain); a cancel that catches it first decrements.
            self.perf.timers_fired += 1;
            self.wheel.arm_external(at, seq)
        } else {
            self.wheel.arm(at, seq, event)
        };
        self.len += 1;
        self.perf.timers_armed += 1;
        if self.len as u64 > self.perf.peak_pending {
            self.perf.peak_pending = self.len as u64;
        }
        if self.len > self.mem_ceiling {
            self.mem_breached = true;
        }
        tok
    }

    /// Cancel a pending timer. Returns `false` when the token is stale
    /// (the timer already fired, was cancelled, or was re-armed).
    pub fn cancel_timer(&mut self, tok: TimerToken) -> bool {
        if self.take_live(tok) {
            self.perf.timers_cancelled += 1;
            true
        } else {
            false
        }
    }

    /// Release the wheel's bookkeeping marker behind a timer that just
    /// popped and fired. Drained-but-unpopped timers keep their slab cell
    /// as an External marker so a cancel racing ahead of the pop can
    /// still remove the batched event; once the event actually fires the
    /// owner calls this to return the cell. No-op on stale tokens.
    pub fn timer_fired(&mut self, tok: TimerToken) {
        self.wheel.release_external(tok);
    }

    /// Cancel-and-re-arm in one step: the timer behind `tok` (if any is
    /// still live) is removed without ever reaching the pop path, and a
    /// fresh timer is armed at `at`. This is the per-ACK RTO pattern.
    pub fn rearm_timer(&mut self, tok: Option<TimerToken>, at: SimTime, event: E) -> TimerToken {
        if let Some(t) = tok {
            if self.take_live(t) {
                self.perf.timers_stale_suppressed += 1;
            }
        }
        self.schedule_timer(at, event)
    }

    /// Cancel-and-re-arm with a caller-supplied tie-break key — the tagged
    /// counterpart of [`rearm_timer`].
    ///
    /// [`rearm_timer`]: EventQueue::rearm_timer
    pub fn rearm_timer_tagged(
        &mut self,
        tok: Option<TimerToken>,
        at: SimTime,
        key: u64,
        event: E,
    ) -> TimerToken {
        if let Some(t) = tok {
            if self.take_live(t) {
                self.perf.timers_stale_suppressed += 1;
            }
        }
        self.schedule_timer_tagged(at, key, event)
    }

    /// Remove a live timer (wheel-resident or already in the drain batch)
    /// without perf attribution; `false` on a stale token.
    fn take_live(&mut self, tok: TimerToken) -> bool {
        match self.wheel.cancel(tok) {
            Cancelled::Stale => false,
            Cancelled::Live(_) => {
                self.len -= 1;
                true
            }
            Cancelled::External(t, s) => {
                // The timer's payload was already delivered to the pop
                // path (armed into the draining batch, or drained from
                // the wheel by an eager refill — the sharded engine's
                // barrier peeks do this routinely). If it is still there
                // (sorted batch or inbox overlay), remove it and undo the
                // delivery-time fired count; otherwise it already popped
                // and the cancel is stale.
                if let Some(pos) = self.current.iter().position(|e| (e.0, e.1) == (t, s)) {
                    self.current.remove(pos);
                    self.len -= 1;
                    self.perf.timers_fired -= 1;
                    true
                } else if self.inbox.iter().any(|e| (e.time, e.seq) == (t, s)) {
                    let mut entries = std::mem::take(&mut self.inbox).into_vec();
                    entries.retain(|e| (e.time, e.seq) != (t, s));
                    self.inbox = entries.into();
                    self.len -= 1;
                    self.perf.timers_fired -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Absolute bucket of the earliest non-empty lane, scanning the
    /// occupancy bitmap in ring order from just past the cursor. `None`
    /// when every lane is empty.
    fn next_occupied_bucket(&self) -> Option<u64> {
        if self.lanes_len == 0 {
            return None;
        }
        let start = ((self.cursor + 1) & LANE_MASK) as usize;
        let (sw, sb) = (start >> 6, start & 63);
        // Bits at/above `sb` of the start word cover slots start..word end.
        let w = self.occupied[sw] >> sb;
        let slot = if w != 0 {
            start + w.trailing_zeros() as usize
        } else {
            let mut found = None;
            for i in 1..=WORDS {
                let wi = (sw + i) % WORDS;
                let mut word = self.occupied[wi];
                if i == WORDS {
                    // Back at the start word: only slots before `start`.
                    word &= (1u64 << sb).wrapping_sub(1);
                }
                if word != 0 {
                    found = Some((wi << 6) + word.trailing_zeros() as usize);
                    break;
                }
            }
            found?
        };
        // Ring distance from the slot just past the cursor.
        let delta = (slot + LANE_COUNT - start) as u64 & LANE_MASK;
        Some(self.cursor + 1 + delta)
    }

    /// First inner bucket (`ob << OUTER_SHIFT`) of the earliest non-empty
    /// outer slot, scanning the outer occupancy bitmap in ring order from
    /// just past the outer cursor. `None` when the outer ring is empty.
    fn next_outer_first_bucket(&self) -> Option<u64> {
        if self.outer_len == 0 {
            return None;
        }
        let ocur = self.cursor >> OUTER_SHIFT;
        let start = ((ocur + 1) & OUTER_MASK) as usize;
        let (sw, sb) = (start >> 6, start & 63);
        let w = self.outer_occ[sw] >> sb;
        let slot = if w != 0 {
            start + w.trailing_zeros() as usize
        } else {
            let mut found = None;
            for i in 1..=OUTER_WORDS {
                let wi = (sw + i) % OUTER_WORDS;
                let mut word = self.outer_occ[wi];
                if i == OUTER_WORDS {
                    word &= (1u64 << sb).wrapping_sub(1);
                }
                if word != 0 {
                    found = Some((wi << 6) + word.trailing_zeros() as usize);
                    break;
                }
            }
            found?
        };
        let delta = (slot + OUTER_COUNT - start) as u64 & OUTER_MASK;
        Some((ocur + 1 + delta) << OUTER_SHIFT)
    }

    /// Cascade the earliest outer slot (first inner bucket `first`, from
    /// [`Self::next_outer_first_bucket`]) into the inner lanes. The cursor
    /// is advanced to `first - 1` — sound because the caller has already
    /// established that no pending event (lane, heap, wheel or outer) has
    /// a bucket below `first` — so every cascaded entry lands within the
    /// inner window (an outer slot spans 64 inner buckets ≪ `LANE_COUNT`).
    fn cascade_outer_slot(&mut self, first: u64) {
        self.cursor = self.cursor.max(first - 1);
        let slot = ((first >> OUTER_SHIFT) & OUTER_MASK) as usize;
        let mut entries = std::mem::take(&mut self.outer[slot]);
        self.outer_occ[slot >> 6] &= !(1u64 << (slot & 63));
        self.outer_len -= entries.len();
        for (at, seq, event) in entries.drain(..) {
            let b = bucket(at);
            debug_assert!(b > self.cursor && b - self.cursor < LANE_COUNT as u64);
            self.insert_lane(b, at, seq, event);
        }
        // Hand the emptied allocation back to the slot for reuse.
        self.outer[slot] = entries;
    }

    /// Refill `current` with the earliest pending bucket's events (lanes,
    /// heap and/or timer wheel), advancing the cursor. Caller guarantees
    /// `len > 0`.
    fn refill(&mut self) {
        let (b, wheel_due, lane_bucket) = loop {
            let heap_bucket = self.heap.peek().map(|e| bucket(e.time));
            let lane_bucket = self.next_occupied_bucket();
            let near = match (lane_bucket, heap_bucket) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            // The wheel's exact minimum can require walking a higher-level
            // slot's cell list, so first rule it out with the bitmap-only
            // lower bound; the exact scan only runs when a timer might
            // actually own this batch (typically: the engine has gone quiet
            // and an RTO is the next thing to happen).
            let resolved = match (near, self.wheel.min_bucket_lower_bound()) {
                (Some(nb), Some(lb)) if nb < lb => Some((nb, false)),
                (near, Some(_)) => match (near, self.wheel.min_bucket()) {
                    (Some(nb), Some(wm)) if nb <= wm => Some((nb, nb == wm)),
                    (_, Some(wm)) => Some((wm, true)),
                    // Unreachable: a Some lower bound means a non-empty wheel.
                    (Some(nb), None) => Some((nb, false)),
                    (None, None) => None,
                },
                (Some(nb), None) => Some((nb, false)),
                (None, None) => None,
            };
            // The outer ring may own (or tie for) the earliest bucket:
            // cascade its first slot into the inner lanes and re-resolve.
            // Each pass drains one outer slot, so this terminates.
            match (resolved, self.next_outer_first_bucket()) {
                (Some((rb, _)), Some(f)) if f <= rb => self.cascade_outer_slot(f),
                (None, Some(f)) => self.cascade_outer_slot(f),
                (None, None) => return,
                (Some((rb, due)), _) => break (rb, due, lane_bucket),
            }
        };
        self.cursor = b;
        let mut meta = LaneMeta::default();
        if lane_bucket == Some(b) {
            let slot = (b & LANE_MASK) as usize;
            std::mem::swap(&mut self.current, &mut self.lanes[slot].entries);
            self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
            self.lanes_len -= self.current.len();
            meta = self.lanes[slot].meta;
        }
        let mut merged = 0usize;
        while let Some(head) = self.heap.peek() {
            if bucket(head.time) != b {
                break;
            }
            if let Some(Entry { time, seq, event }) = self.heap.pop() {
                self.current.push((time, seq, event));
                merged += 1;
            }
        }
        // Keep the wheel's base glued to the cursor (sound: `b` is the
        // global minimum pending bucket), then deliver its due timers.
        self.wheel.advance_to(b);
        if wheel_due {
            let fired = self.wheel.drain_bucket(b, &mut self.current);
            self.perf.timers_fired += fired as u64;
            merged += fired;
        }
        // Order descending, so the earliest (time, seq) pops from the
        // back. Fast paths when the batch is pure lane content: a single
        // ascending insertion run (the same-tick burst case) just
        // reverses, two runs take a linear merge, anything else sorts.
        if merged == 0 && meta.runs <= 1 {
            self.current.reverse();
        } else if merged == 0 && meta.runs == 2 {
            self.merge_two_runs(meta.first_run_len as usize);
        } else {
            self.current
                .sort_unstable_by_key(|e| std::cmp::Reverse((e.0, e.1)));
        }
    }

    /// Merge the two ascending sub-runs of `current` (split at `split`)
    /// into one descending batch with a linear two-pointer pass instead
    /// of a comparison sort. Sequence numbers are unique, so the merged
    /// order is the exact `(time, seq)` total order either way.
    fn merge_two_runs(&mut self, split: usize) {
        if split == 0 || split >= self.current.len() {
            // Defensive: meta out of sync would mean a logic bug, but a
            // sort is always a correct answer.
            self.current
                .sort_unstable_by_key(|e| std::cmp::Reverse((e.0, e.1)));
            return;
        }
        self.scratch.clear();
        self.scratch.extend(self.current.drain(split..));
        let mut merged = std::mem::take(&mut self.spare);
        merged.clear();
        merged.reserve(self.current.len() + self.scratch.len());
        loop {
            let take_second = match (self.current.last(), self.scratch.last()) {
                (Some(a), Some(s)) => (s.0, s.1) > (a.0, a.1),
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => break,
            };
            let popped = if take_second {
                self.scratch.pop()
            } else {
                self.current.pop()
            };
            if let Some(x) = popped {
                merged.push(x);
            }
        }
        self.spare = std::mem::replace(&mut self.current, merged);
    }

    /// Pop the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(t, _, e)| (t, e))
    }

    /// Pop the earliest event together with its tie-break key.
    ///
    /// The sharded engine needs the key of the event being processed (it
    /// seeds the provenance of any records that event produces); plain
    /// [`pop`] discards it.
    ///
    /// [`pop`]: EventQueue::pop
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        if self.current.is_empty() && self.inbox.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.refill();
        }
        // Earliest of the sorted batch tail and the overlay top; sequence
        // numbers are unique, so the comparison is never a tie.
        let take_inbox = match (self.current.last(), self.inbox.peek()) {
            (Some(c), Some(i)) => (i.time, i.seq) < (c.0, c.1),
            (None, Some(_)) => true,
            _ => false,
        };
        let (time, seq, event) = if take_inbox {
            let e = self.inbox.pop()?;
            (e.time, e.seq, e.event)
        } else {
            self.current.pop()?
        };
        self.len -= 1;
        self.perf.popped += 1;
        crate::invariant!(time >= self.now, "time went backwards");
        if cfg!(feature = "strict-invariants") {
            if let Some((t, s)) = self.last_popped {
                crate::invariant!(
                    time > t || (time == t && seq > s),
                    "(time, seq) total order violated: popped ({time}, {seq}) after ({t}, {s})"
                );
            }
            self.last_popped = Some((time, seq));
        }
        self.now = time;
        Some((time, seq, event))
    }

    /// Timestamp of the next event without popping it.
    ///
    /// Takes `&mut self` because peeking past an exhausted batch refills
    /// from the earliest pending bucket — the same work the next `pop`
    /// would do, just done early (the observable pop order is unchanged).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.current.is_empty() && self.inbox.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.refill();
        }
        match (self.current.last(), self.inbox.peek()) {
            (Some(c), Some(i)) => Some(if (i.time, i.seq) < (c.0, c.1) {
                i.time
            } else {
                c.0
            }),
            (Some(c), None) => Some(c.0),
            (None, Some(i)) => Some(i.time),
            (None, None) => None,
        }
    }

    /// `(time, key)` of the next event without popping it — the ordering
    /// key the next [`pop`] will honour. The serial engine uses this to
    /// interleave out-of-queue work (fault application) at its exact
    /// `(time, tag)` position; the sharded engine uses it to publish each
    /// shard's next-event time at window barriers.
    ///
    /// Takes `&mut self` for the same refill reason as [`peek_time`].
    ///
    /// [`pop`]: EventQueue::pop
    /// [`peek_time`]: EventQueue::peek_time
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if self.current.is_empty() && self.inbox.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.refill();
        }
        match (self.current.last(), self.inbox.peek()) {
            (Some(c), Some(i)) => Some(if (i.time, i.seq) < (c.0, c.1) {
                (i.time, i.seq)
            } else {
                (c.0, c.1)
            }),
            (Some(c), None) => Some((c.0, c.1)),
            (None, Some(i)) => Some((i.time, i.seq)),
            (None, None) => None,
        }
    }

    /// Remove and return **all** pending events as `(time, key, event)`
    /// triples sorted by `(time, key)`, leaving the queue empty but its
    /// clock and counters intact.
    ///
    /// This is the shard-split primitive: setup events scheduled on a
    /// serial network are drained here and re-scheduled (with their keys
    /// preserved) onto the owning shard's queue. Perf counters are not
    /// attributed — a split is bookkeeping, not simulation work.
    ///
    /// # Panics
    /// Panics if any cancellable timer is still armed: timer tokens index
    /// this queue's wheel and cannot be migrated. Shard a network before
    /// arming timers (in practice: before the first `run_*` call).
    pub fn drain_entries(&mut self) -> Vec<(SimTime, u64, E)> {
        let mut out: Vec<(SimTime, u64, E)> = Vec::with_capacity(self.len);
        out.append(&mut self.current);
        out.extend(
            std::mem::take(&mut self.inbox)
                .into_iter()
                .map(|e| (e.time, e.seq, e.event)),
        );
        if self.lanes_len > 0 {
            for lane in &mut self.lanes {
                out.append(&mut lane.entries);
                lane.meta = LaneMeta::default();
            }
        }
        if self.outer_len > 0 {
            for slot in &mut self.outer {
                out.append(slot);
            }
        }
        out.extend(
            std::mem::take(&mut self.heap)
                .into_iter()
                .map(|e| (e.time, e.seq, e.event)),
        );
        assert!(
            out.len() == self.len,
            "drain_entries with {} armed timer(s): timers cannot migrate across shards",
            self.len - out.len()
        );
        self.occupied = [0; WORDS];
        self.lanes_len = 0;
        self.outer_occ = [0; OUTER_WORDS];
        self.outer_len = 0;
        self.len = 0;
        out.sort_unstable_by_key(|e| (e.0, e.1));
        out
    }

    /// Restart the strict-invariants pop-order watermark.
    ///
    /// The `(time, seq)` total-order check assumes keys only ever grow
    /// along the pop stream — true for everything the engine schedules
    /// (strictly future times), but *setup-context* scheduling may
    /// legally land at `now` with a key below ones already popped at
    /// this instant: re-injecting events into a network whose run
    /// already finished, or a manual link-up kick between runs (setup
    /// tags sort below every same-time runtime tag by design, see
    /// CONCURRENCY.md). Callers doing that restart the watermark so the
    /// next pop is checked against the new stream, not the old one.
    /// No-op outside `strict-invariants` builds (the watermark is never
    /// written there).
    pub fn rewind_order_watermark(&mut self) {
        self.last_popped = None;
    }

    /// Advance the queue's clock to `t` without popping anything, so later
    /// `schedule` calls measure "the past" against `t`. Used when a queue
    /// stands for a simulation whose time advanced elsewhere (the shard
    /// coordinator after a parallel phase). `t` earlier than `now` is a
    /// no-op — the clock never rewinds.
    pub fn advance_now(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all pending events and timers (used when tearing a run down
    /// early); outstanding [`TimerToken`]s go stale.
    pub fn clear(&mut self) {
        self.current.clear();
        self.inbox.clear();
        self.heap.clear();
        if self.lanes_len > 0 {
            for lane in &mut self.lanes {
                lane.entries.clear();
            }
        }
        self.occupied = [0; WORDS];
        self.lanes_len = 0;
        if self.outer_len > 0 {
            for slot in &mut self.outer {
                slot.clear();
            }
        }
        self.outer_occ = [0; OUTER_WORDS];
        self.outer_len = 0;
        self.wheel.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(9));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), e), (10, 1));
        // schedule relative to the new now
        q.schedule(q.now() + crate::time::Duration::from_nanos(5), 2);
        q.schedule(q.now() + crate::time::Duration::from_nanos(1), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn tagged_order_is_key_order_not_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(100);
        q.schedule_tagged(t, 30, "c");
        q.schedule_tagged(t, 10, "a");
        q.schedule_tagged(t, 20, "b");
        // Across buckets too: far-future heap entry with a small key.
        q.schedule_tagged(SimTime::from_millis(50), 1, "far");
        let order: Vec<(u64, &str)> =
            std::iter::from_fn(|| q.pop_keyed().map(|(_, k, e)| (k, e))).collect();
        assert_eq!(order, vec![(10, "a"), (20, "b"), (30, "c"), (1, "far")]);
    }

    #[test]
    fn peek_key_matches_next_pop() {
        let mut q = EventQueue::new();
        q.schedule_tagged(SimTime::from_nanos(40), 9, ());
        q.schedule_tagged(SimTime::from_nanos(40), 4, ());
        assert_eq!(q.peek_key(), Some((SimTime::from_nanos(40), 4)));
        let (t, k, ()) = q.pop_keyed().unwrap();
        assert_eq!((t, k), (SimTime::from_nanos(40), 4));
        assert_eq!(q.peek_key(), Some((SimTime::from_nanos(40), 9)));
        q.pop();
        assert_eq!(q.peek_key(), None);
    }

    #[test]
    fn drain_entries_returns_sorted_and_empties_queue() {
        let mut q = EventQueue::new();
        // One in each region: near lane, current bucket, far heap.
        q.schedule_tagged(SimTime::from_nanos(2_000), 3, "lane");
        q.schedule_tagged(SimTime::from_nanos(1), 2, "near");
        q.schedule_tagged(SimTime::from_millis(900), 1, "far");
        // Force a refill so `current`/`inbox` are populated too.
        q.pop_keyed();
        q.schedule_tagged(q.now(), 7, "inbox");
        let drained = q.drain_entries();
        let labels: Vec<&str> = drained.iter().map(|e| e.2).collect();
        assert_eq!(labels, vec!["inbox", "lane", "far"]);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        // The queue is reusable after a drain.
        q.schedule_tagged(SimTime::from_millis(901), 5, "again");
        assert_eq!(q.pop().unwrap().1, "again");
    }

    #[test]
    #[should_panic(expected = "armed timer")]
    fn drain_entries_rejects_armed_timers() {
        let mut q = EventQueue::new();
        q.schedule_timer(SimTime::from_micros(10), ());
        let _ = q.drain_entries();
    }

    #[test]
    fn tagged_timer_rearm_replays_like_schedule_timer() {
        let mut q = EventQueue::new();
        let tok = q.schedule_timer_tagged(SimTime::from_micros(5), 11, "old");
        let _tok2 = q.rearm_timer_tagged(Some(tok), SimTime::from_micros(7), 12, "new");
        q.schedule_tagged(SimTime::from_micros(6), 1, "mid");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["mid", "new"]);
        assert_eq!(q.perf().timers_stale_suppressed, 1);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_nanos(1), ());
        q.schedule(SimTime::from_nanos(2), ());
        // One near (lane), one at the current bucket, one far (heap).
        q.schedule(SimTime::from_nanos(5_000), ());
        q.schedule(SimTime::from_millis(50), ());
        assert_eq!(q.len(), 4);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(4)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(4));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn perf_counters_track_traffic() {
        let mut q = EventQueue::new();
        for k in 0..10u64 {
            q.schedule(SimTime::from_nanos(k * 100), k);
        }
        assert_eq!(q.perf().pushed, 10);
        assert_eq!(q.perf().peak_pending, 10);
        while q.pop().is_some() {}
        let p = q.perf();
        assert_eq!(p.popped, 10);
        assert_eq!(p.peak_pending, 10);
    }

    // ── calendar-specific edge cases ──────────────────────────────────

    /// One lane is 1024 ns wide: events straddling a lane boundary, in
    /// adversarial insertion order, must still pop in time order.
    #[test]
    fn ordering_across_lane_boundaries() {
        let mut q = EventQueue::new();
        let times = [1023u64, 1025, 1024, 1, 2047, 2048, 0, 1022];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut popped: Vec<u64> = Vec::new();
        while let Some((t, _)) = q.pop() {
            popped.push(t.as_nanos());
        }
        let mut want = times.to_vec();
        want.sort_unstable();
        assert_eq!(popped, want);
    }

    /// Same-time events in the same lane keep FIFO order even when other
    /// lanes interleave.
    #[test]
    fn fifo_within_a_lane_bucket() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(2_000), "b0");
        q.schedule(SimTime::from_nanos(1_500), "a0");
        q.schedule(SimTime::from_nanos(1_500), "a1");
        q.schedule(SimTime::from_nanos(2_000), "b1");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a0", "a1", "b0", "b1"]);
    }

    /// Advance the cursor many times around the lane ring: slots are
    /// reused for buckets LANE_COUNT apart without mixing them up.
    #[test]
    fn cursor_wraparound_reuses_slots() {
        let mut q = EventQueue::new();
        let width = 1u64 << LANE_BITS;
        let ring_span = width * LANE_COUNT as u64;
        // Three full ring revolutions, two events per revolution that map
        // to the same slot.
        let mut scheduled = Vec::new();
        for rev in 0..3u64 {
            for k in 0..2u64 {
                let t = rev * ring_span + k * width * 7 + 13;
                scheduled.push(t);
            }
        }
        // Schedule the nearest first so every later one is in range of the
        // not-yet-advanced cursor only via the heap, then pop interleaved.
        for &t in &scheduled {
            q.schedule(SimTime::from_nanos(t), t);
        }
        let mut popped = Vec::new();
        while let Some((t, e)) = q.pop() {
            assert_eq!(t.as_nanos(), e);
            popped.push(e);
            // Interleave: schedule one future event mid-drain, still after
            // `now`, exercising in-flight inserts while the ring wraps.
            if popped.len() == 2 {
                let extra = t.as_nanos() + ring_span + 1;
                q.schedule(SimTime::from_nanos(extra), extra);
                scheduled.push(extra);
            }
        }
        scheduled.sort_unstable();
        assert_eq!(popped, scheduled);
    }

    /// Events beyond the lane horizon land in the outer ring (or heap)
    /// and merge back in time order when the cursor reaches them.
    #[test]
    fn heap_fallback_beyond_horizon() {
        let mut q = EventQueue::new();
        let horizon = (1u64 << LANE_BITS) * LANE_COUNT as u64;
        // Far events first (outer ring), then near events (lanes).
        q.schedule(SimTime::from_nanos(3 * horizon), "far2");
        q.schedule(SimTime::from_nanos(2 * horizon + 5), "far1");
        q.schedule(SimTime::from_nanos(100), "near1");
        q.schedule(SimTime::from_nanos(horizon - 1), "near2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["near1", "near2", "far1", "far2"]);
    }

    /// The outer ring absorbs multi-RTT range events without heap
    /// traffic: only events beyond ≈ 67 ms spill, and the counter sees
    /// exactly those.
    #[test]
    fn outer_horizon_absorbs_multi_rtt_events() {
        let mut q = EventQueue::new();
        let inner = (1u64 << LANE_BITS) * LANE_COUNT as u64; // ≈ 1.05 ms
        let outer = inner << OUTER_SHIFT; // ≈ 67 ms
        q.schedule(SimTime::from_nanos(inner + 5), "rto-ish"); // outer ring
        q.schedule(SimTime::from_nanos(10 * inner), "sample"); // outer ring
        q.schedule(SimTime::from_nanos(outer - 1), "outer-edge"); // outer ring
        assert_eq!(q.perf().heap_spills, 0, "nothing spilled yet");
        q.schedule(SimTime::from_nanos(outer + inner), "spill");
        assert_eq!(q.perf().heap_spills, 1);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["rto-ish", "sample", "outer-edge", "spill"]);
    }

    /// An outer-ring event and inner-lane events sharing the same inner
    /// bucket interleave in exact `(time, seq)` order after the cascade.
    #[test]
    fn outer_cascade_merges_with_inner_lane_bucket() {
        let mut q = EventQueue::new();
        let inner = (1u64 << LANE_BITS) * LANE_COUNT as u64;
        let far = 2 * inner + 500;
        q.schedule(SimTime::from_nanos(far), "outer-first"); // beyond inner ⇒ outer ring
        q.schedule(SimTime::from_nanos(10), "near");
        q.pop(); // "near": cursor still at bucket 0, outer entry pending
        q.schedule(SimTime::from_nanos(inner), "mid");
        q.pop(); // "mid": `far` now within the inner horizon
        q.schedule(SimTime::from_nanos(far), "lane-second"); // same time, later seq
        q.schedule(SimTime::from_nanos(far - 1), "lane-earlier");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["lane-earlier", "outer-first", "lane-second"]);
        assert_eq!(q.perf().heap_spills, 0, "outer ring kept the heap idle");
    }

    /// Outer ring slots are reused across ring revolutions (buckets
    /// `OUTER_COUNT` outer-widths apart) without mixing entries up.
    #[test]
    fn outer_ring_wraparound() {
        let mut q = EventQueue::new();
        let ow = 1u64 << (LANE_BITS + OUTER_SHIFT); // one outer lane
        let span = ow * OUTER_COUNT as u64;
        let mut scheduled = Vec::new();
        for rev in 0..3u64 {
            for k in 0..2u64 {
                let t = rev * span + k * ow * 5 + ow * 20 + 17;
                q.schedule(SimTime::from_nanos(t), t);
                scheduled.push(t);
            }
        }
        let mut popped = Vec::new();
        while let Some((t, e)) = q.pop() {
            assert_eq!(t.as_nanos(), e);
            popped.push(e);
        }
        scheduled.sort_unstable();
        assert_eq!(popped, scheduled);
    }

    /// A heap event and a lane event in the *same* bucket (possible when
    /// the far event was scheduled before the cursor advanced) interleave
    /// correctly, including FIFO on exact ties.
    #[test]
    fn heap_and_lane_merge_within_bucket() {
        let mut q = EventQueue::new();
        let horizon = (1u64 << LANE_BITS) * LANE_COUNT as u64;
        let far = 2 * horizon + 500;
        q.schedule(SimTime::from_nanos(far), "heap-first"); // beyond horizon ⇒ heap
        q.schedule(SimTime::from_nanos(10), "near");
        q.pop(); // "near": cursor at bucket 0 still, heap event pending
                 // Drain to the far bucket via an intermediate event, then add a
                 // lane event in the same bucket as the heap one.
        q.schedule(SimTime::from_nanos(horizon), "mid");
        q.pop(); // "mid": cursor advanced; `far` now within lane horizon
        q.schedule(SimTime::from_nanos(far), "lane-second"); // same time, later seq
        q.schedule(SimTime::from_nanos(far - 1), "lane-earlier");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["lane-earlier", "heap-first", "lane-second"]);
    }

    /// Scheduling into the bucket currently being drained inserts in
    /// order (the ACK-turnaround pattern: tx_time shorter than one lane).
    #[test]
    fn insert_into_current_bucket_mid_drain() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), 1);
        q.schedule(SimTime::from_nanos(300), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        // now = 100; bucket 0 is being drained. Insert between and after.
        q.schedule(SimTime::from_nanos(200), 2);
        q.schedule(SimTime::from_nanos(400), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 3, 4]);
    }

    // ── timer integration ─────────────────────────────────────────────

    #[test]
    fn timers_interleave_with_events_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), "event-10us");
        q.schedule_timer(SimTime::from_micros(5), "timer-5us");
        q.schedule(SimTime::from_micros(1), "event-1us");
        q.schedule_timer(SimTime::from_millis(20), "timer-20ms");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            vec!["event-1us", "timer-5us", "event-10us", "timer-20ms"]
        );
        let p = q.perf();
        assert_eq!(p.timers_armed, 2);
        assert_eq!(p.timers_fired, 2);
        assert_eq!(p.timers_cancelled, 0);
        assert_eq!(p.timers_stale_suppressed, 0);
    }

    #[test]
    fn cancelled_timer_never_pops() {
        let mut q: EventQueue<&str> = EventQueue::new();
        let tok = q.schedule_timer(SimTime::from_millis(10), "rto");
        assert_eq!(q.len(), 1);
        assert!(q.cancel_timer(tok));
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        // A second cancel is stale.
        assert!(!q.cancel_timer(tok));
        let p = q.perf();
        assert_eq!(p.timers_cancelled, 1);
        assert_eq!(p.popped, 0);
    }

    #[test]
    fn rearm_suppresses_stale_and_fires_last_deadline() {
        let mut q: EventQueue<u32> = EventQueue::new();
        // The per-ACK RTO pattern: re-arm 5 times, only the last fires.
        let mut tok = None;
        for k in 0..5u64 {
            tok = Some(q.rearm_timer(tok, SimTime::from_millis(10 + k), k as u32));
        }
        assert_eq!(q.len(), 1);
        let fired: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(fired, vec![4]);
        let p = q.perf();
        assert_eq!(p.timers_armed, 5);
        assert_eq!(p.timers_stale_suppressed, 4);
        assert_eq!(p.timers_fired, 1);
        assert_eq!(p.popped, 1, "stale timers never reach the pop path");
    }

    #[test]
    fn timer_into_draining_bucket_is_cancellable() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), "a");
        q.schedule(SimTime::from_nanos(900), "b");
        assert_eq!(q.pop().unwrap().1, "a"); // bucket 0 is now draining
        let tok = q.schedule_timer(SimTime::from_nanos(500), "deadline");
        assert!(q.cancel_timer(tok));
        assert!(!q.cancel_timer(tok));
        let rest: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec!["b"]);
    }

    #[test]
    fn timer_into_draining_bucket_fires_in_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), "a");
        q.schedule(SimTime::from_nanos(900), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        let tok = q.schedule_timer(SimTime::from_nanos(500), "t");
        let rest: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec!["t", "c"]);
        // Cancelling after the fire is stale, not a panic or a removal.
        assert!(!q.cancel_timer(tok));
    }

    #[test]
    fn timer_keeps_queue_alive_for_run_until_idle_loops() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule_timer(SimTime::from_secs(2), "rto");
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("rto"));
    }

    // ── two-level refill fast paths ───────────────────────────────────

    /// A same-tick burst (one ascending run) and a two-run interleave
    /// must pop in exactly the order the sort would have produced.
    #[test]
    fn two_run_lane_merges_in_order() {
        let mut q = EventQueue::new();
        // All in lane bucket 1 (1024..2047 ns): run 1 ascending, then a
        // second ascending run starting below the first's tail.
        for &t in &[1100u64, 1200, 1300] {
            q.schedule(SimTime::from_nanos(t), t);
        }
        for &t in &[1150u64, 1250, 1350] {
            q.schedule(SimTime::from_nanos(t), t);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(popped, vec![1100, 1150, 1200, 1250, 1300, 1350]);
    }

    #[test]
    fn same_tick_burst_keeps_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(2_000); // lane bucket 1
        for i in 0..300 {
            q.schedule(t, i);
        }
        let popped: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(popped, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn three_runs_fall_back_to_sort() {
        let mut q = EventQueue::new();
        let times = [1300u64, 1100, 1200, 1050, 1250];
        for &t in &times {
            q.schedule(SimTime::from_nanos(t), t);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let mut want = times.to_vec();
        want.sort_unstable();
        assert_eq!(popped, want);
    }

    proptest! {
        /// Whatever mix of times goes in, pops come out in nondecreasing
        /// time order and FIFO within equal times.
        #[test]
        fn prop_total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
            }
            let mut last_time = SimTime::ZERO;
            let mut last_seq_at_time: Option<usize> = None;
            while let Some((t, idx)) = q.pop() {
                prop_assert!(t >= last_time);
                if t == last_time {
                    if let Some(prev) = last_seq_at_time {
                        prop_assert!(idx > prev, "FIFO violated at equal time");
                    }
                } else {
                    last_time = t;
                }
                last_seq_at_time = Some(idx);
            }
        }

        /// Every scheduled event is eventually popped exactly once.
        #[test]
        fn prop_no_loss_no_duplication(times in proptest::collection::vec(0u64..100, 1..300)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
            }
            let mut seen = vec![false; times.len()];
            while let Some((_, idx)) = q.pop() {
                prop_assert!(!seen[idx], "duplicate pop");
                seen[idx] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }

        /// Same properties at calendar scale: times spanning several lane
        /// widths, the full ring, and the heap horizon, with interleaved
        /// pops.
        #[test]
        fn prop_total_order_across_horizons(
            times in proptest::collection::vec(0u64..3_000_000_000, 1..300),
            pop_every in 2usize..6,
        ) {
            let mut q = EventQueue::new();
            let mut popped: Vec<(u64, usize)> = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                // Never schedule into the past relative to `now`.
                let at = t.max(q.now().as_nanos());
                q.schedule(SimTime::from_nanos(at), i);
                if i % pop_every == 0 {
                    if let Some((pt, pi)) = q.pop() {
                        popped.push((pt.as_nanos(), pi));
                    }
                }
            }
            while let Some((pt, pi)) = q.pop() {
                popped.push((pt.as_nanos(), pi));
            }
            prop_assert_eq!(popped.len(), times.len());
            for w in popped.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            }
            let mut seen = vec![false; times.len()];
            for &(_, i) in &popped {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }

        /// Events, timer arms, cancels and re-arms interleaved: surviving
        /// entries pop in exactly the `(time, seq)` order of a naive
        /// sorted-list oracle that mirrors the sequence counter.
        #[test]
        fn prop_timers_and_events_match_oracle(
            ops in proptest::collection::vec((0u8..5, 0u64..3_000_000_000u64, 0usize..8), 1..200),
        ) {
            let mut q: EventQueue<u64> = EventQueue::new();
            // Oracle: (time_ns, seq) of every entry that should pop.
            let mut oracle: Vec<(u64, u64)> = Vec::new();
            // One re-armable timer slot per id, as transport uses them.
            let mut toks: [Option<(TimerToken, u64, u64)>; 8] = [None; 8];
            let mut seq = 0u64;
            for (op, raw_ns, id) in ops {
                let at = raw_ns.max(q.now().as_nanos());
                match op {
                    0 | 1 => {
                        q.schedule(SimTime::from_nanos(at), seq);
                        oracle.push((at, seq));
                        seq += 1;
                    }
                    2 => {
                        let tok = q.schedule_timer(SimTime::from_nanos(at), seq);
                        toks[id] = Some((tok, at, seq));
                        oracle.push((at, seq));
                        seq += 1;
                    }
                    3 => {
                        if let Some((tok, t, s)) = toks[id].take() {
                            if q.cancel_timer(tok) {
                                oracle.retain(|&e| e != (t, s));
                            }
                        }
                    }
                    _ => {
                        let prev = toks[id].take();
                        let before = q.perf().timers_stale_suppressed;
                        let tok = q.rearm_timer(prev.map(|p| p.0), SimTime::from_nanos(at), seq);
                        if q.perf().timers_stale_suppressed > before {
                            // The old timer was still live and got
                            // suppressed; mirror its removal.
                            if let Some((_, t, s)) = prev {
                                oracle.retain(|&e| e != (t, s));
                            }
                        }
                        toks[id] = Some((tok, at, seq));
                        oracle.push((at, seq));
                        seq += 1;
                    }
                }
                // Occasionally pop one to move `now` forward.
                if seq % 7 == 3 {
                    if let Some((t, e)) = q.pop() {
                        let mut want = oracle.clone();
                        want.sort_unstable();
                        prop_assert_eq!((t.as_nanos(), e), want[0]);
                        oracle.retain(|&x| x != want[0]);
                    }
                }
            }
            oracle.sort_unstable();
            let mut got: Vec<(u64, u64)> = Vec::new();
            while let Some((t, e)) = q.pop() {
                got.push((t.as_nanos(), e));
            }
            prop_assert_eq!(got, oracle);
        }
    }
}
