//! The event queue at the heart of the discrete-event engine.
//!
//! Events are ordered by `(time, sequence)`: among events scheduled for the
//! same instant, insertion order wins. This total order makes every
//! simulation run deterministic — a property the integration tests assert
//! end-to-end (same seed ⇒ bit-identical flow completion times).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    /// `(time, seq)` of the most recent pop, for the strict-invariants
    /// total-order check: pop times never decrease, and among equal times
    /// sequence numbers strictly increase (FIFO).
    last_popped: Option<(SimTime, u64)>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue positioned at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            last_popped: None,
        }
    }

    /// Current simulation time: the timestamp of the last popped event (or
    /// zero before any pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Debug-panics when scheduling into the past; the engine never rewinds.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        crate::invariant!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Pop the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        crate::invariant!(entry.time >= self.now, "time went backwards");
        if cfg!(feature = "strict-invariants") {
            if let Some((t, s)) = self.last_popped {
                crate::invariant!(
                    entry.time > t || (entry.time == t && entry.seq > s),
                    "(time, seq) total order violated: popped ({}, {}) after ({t}, {s})",
                    entry.time,
                    entry.seq
                );
            }
            self.last_popped = Some((entry.time, entry.seq));
        }
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events (used when tearing a run down early).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(9));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), e), (10, 1));
        // schedule relative to the new now
        q.schedule(q.now() + crate::time::Duration::from_nanos(5), 2);
        q.schedule(q.now() + crate::time::Duration::from_nanos(1), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_nanos(1), ());
        q.schedule(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(4)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(4));
        assert_eq!(q.peek_time(), None);
    }

    proptest! {
        /// Whatever mix of times goes in, pops come out in nondecreasing
        /// time order and FIFO within equal times.
        #[test]
        fn prop_total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
            }
            let mut last_time = SimTime::ZERO;
            let mut last_seq_at_time: Option<usize> = None;
            while let Some((t, idx)) = q.pop() {
                prop_assert!(t >= last_time);
                if t == last_time {
                    if let Some(prev) = last_seq_at_time {
                        prop_assert!(idx > prev, "FIFO violated at equal time");
                    }
                } else {
                    last_time = t;
                }
                last_seq_at_time = Some(idx);
            }
        }

        /// Every scheduled event is eventually popped exactly once.
        #[test]
        fn prop_no_loss_no_duplication(times in proptest::collection::vec(0u64..100, 1..300)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
            }
            let mut seen = vec![false; times.len()];
            while let Some((_, idx)) = q.pop() {
                prop_assert!(!seen[idx], "duplicate pop");
                seen[idx] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}
