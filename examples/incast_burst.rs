//! Incast burst tolerance (a miniature Figures 10–11): 16 servers answer a
//! query at once while long-lived background flows hold the bottleneck.
//! Shows why ECN♯ keeps the instantaneous marking component: CoDel-style
//! persistence-only control loses packets under the burst.
//!
//! Run with:
//! ```text
//! cargo run --release --example incast_burst
//! ```

use ecn_sharp::experiments::{run_incast_micro_with, IncastTimeline, Scheme};

fn main() {
    println!("Incast microscope: 16->1, background flows + query burst (compressed timeline)\n");
    println!(
        "{:16} {:>9} {:>15} {:>7} {:>9} {:>14} {:>14}",
        "scheme", "fanout", "standing_pkts", "drops", "timeouts", "query_avg_ms", "query_p99_ms"
    );
    for fanout in [50usize, 100] {
        for scheme in [
            Scheme::DctcpRedTail,
            Scheme::CoDelDrop,
            Scheme::EcnSharp(None),
        ] {
            let r = run_incast_micro_with(scheme.clone(), fanout, 5, IncastTimeline::Compressed);
            println!(
                "{:16} {:>9} {:>15.1} {:>7} {:>9} {:>14.3} {:>14.3}",
                scheme.label(),
                fanout,
                r.standing_pkts,
                r.drops,
                r.query_timeouts,
                r.query_fct.overall.avg * 1e3,
                r.query_fct.overall.p99 * 1e3,
            );
        }
        println!();
    }
    println!("DCTCP-RED-Tail holds a standing queue (latency tax); CoDel in its");
    println!("classic dropping mode loses packets under the burst and strands");
    println!("query flows in retransmission timeouts; ECN# drains the standing");
    println!("queue AND keeps the burst lossless (paper section 5.4).");
}
