//! RTT-variation probe (a miniature Table 1 / Figure 1): sample the
//! processing-delay pipeline model for each component combination and
//! print the statistics next to the paper's measurements.
//!
//! Run with:
//! ```text
//! cargo run --release --example rtt_variation_probe
//! ```

use ecn_sharp::sim::Rng;
use ecn_sharp::workload::{measure_case, Table1Case};

fn main() {
    println!("Table 1 probe: 3000 request-response RTTs per component chain\n");
    println!(
        "{:48} {:>8} {:>8} {:>8} {:>8}   (paper mean/std/p90/p99)",
        "components", "mean", "std", "p90", "p99"
    );
    let mut rng = Rng::seed_from_u64(1);
    let mut base_mean = None;
    for case in Table1Case::all() {
        let s = measure_case(case, 3_000, &mut rng);
        let (pm, ps, p90, p99) = case.paper_row();
        println!(
            "{:48} {:>8.1} {:>8.1} {:>8.1} {:>8.1}   ({pm}/{ps}/{p90}/{p99})",
            case.label(),
            s.mean,
            s.std,
            s.p90,
            s.p99
        );
        match base_mean {
            None => base_mean = Some(s.mean),
            Some(base) if case == Table1Case::LoadedStackSlbHypervisor => {
                println!(
                    "\nmean-RTT variation across cases: {:.2}x (paper: 2.68x)",
                    s.mean / base
                );
            }
            Some(_) => {}
        }
    }
}
