//! Packet schedulers (a miniature Figure 13): ECN♯ underneath Deficit
//! Weighted Round Robin with three service classes (weights 2:1:1).
//! Sojourn-time marking is oblivious to how the scheduler splits the port,
//! so the weighted goodput staircase is preserved while short probes still
//! see low latency.
//!
//! Run with:
//! ```text
//! cargo run --release --example dwrr_scheduling
//! ```

use ecn_sharp::experiments::{run_dwrr, Scheme};
use ecn_sharp::sim::Duration;

fn main() {
    println!("DWRR 2:1:1 with ECN# marking (long flows join at 0s / 0.5s / 1.0s)\n");
    let r = run_dwrr(Scheme::EcnSharp(None), 21);
    println!(
        "{:>7} {:>12} {:>12} {:>12}",
        "t", "class0_gbps", "class1_gbps", "class2_gbps"
    );
    for (t, g) in r.checkpoints.iter().zip(&r.goodput) {
        println!(
            "{:>6.1}s {:>12.2} {:>12.2} {:>12.2}",
            t.as_secs_f64(),
            g[0],
            g[1],
            g[2]
        );
    }
    println!(
        "\nshort probes: avg {:.1} us, p99 {:.1} us over {} probes",
        r.probe_fct.overall.avg * 1e6,
        r.probe_fct.overall.p99 * 1e6,
        r.probe_fct.overall.count
    );

    let tcn = run_dwrr(Scheme::Tcn(Some(Duration::from_micros(150))), 21);
    println!(
        "TCN comparison: avg {:.1} us, p99 {:.1} us (paper: ECN# ~19.6% better avg)",
        tcn.probe_fct.overall.avg * 1e6,
        tcn.probe_fct.overall.p99 * 1e6,
    );
}
