//! Quickstart: the paper's core claim in one minimal experiment.
//!
//! Two DCTCP senders share a 10 Gbps bottleneck. One has a small base RTT,
//! one a large base RTT (3× spread — the paper's §2.2 situation). The
//! switch runs either "current practice" (DCTCP-RED with a threshold sized
//! for the 90th-percentile RTT) or ECN♯. We then fire a burst of short
//! flows through the same port and compare their latency.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use ecn_sharp::aqm::DctcpRed;
use ecn_sharp::core::{EcnSharp, EcnSharpConfig};
use ecn_sharp::net::topology::star;
use ecn_sharp::net::{FlowCmd, FlowId, PortConfig};
use ecn_sharp::sim::{Duration, Rate, SimTime};
use ecn_sharp::stats::FctBreakdown;
use ecn_sharp::transport::{TcpConfig, TcpStack};
use ecnsharp_aqm::{Aqm, DropTail};

fn run(label: &str, make_aqm: impl Fn() -> Box<dyn Aqm>) {
    let rate = Rate::from_gbps(10);
    // 4 hosts: two long-flow senders, one probe sender, one receiver.
    let mut topo = star(
        7,
        4,
        rate,
        Duration::from_micros(70 / 4), // base network RTT ≈ 70 us
        |_| TcpStack::boxed(TcpConfig::dctcp()),
        || PortConfig::fifo(4_000_000, Box::new(DropTail::new())),
        || PortConfig::fifo(1_000_000, make_aqm()),
    );
    let receiver = topo.hosts[3];

    // Long-lived flows: one small-RTT (no extra delay), one large-RTT
    // (+140 us, the 3x case). Both run for the whole experiment.
    for (i, extra_us) in [0u64, 140].into_iter().enumerate() {
        topo.net.schedule_flow(
            SimTime::ZERO,
            FlowCmd {
                flow: FlowId(1 + i as u64),
                src: topo.hosts[i],
                dst: receiver,
                size: 500_000_000,
                class: 0,
                extra_delay: Duration::from_micros(extra_us),
            },
        );
    }
    // After the long flows converge, probe with 30 short flows (20 KB).
    for k in 0..30u64 {
        topo.net.schedule_flow(
            SimTime::from_millis(100) + Duration::from_millis(k * 3),
            FlowCmd {
                flow: FlowId(100 + k),
                src: topo.hosts[2],
                dst: receiver,
                size: 20_000,
                class: 0,
                extra_delay: Duration::ZERO,
            },
        );
    }
    let bport = topo.net.port_towards(topo.switch, receiver).unwrap();
    topo.net.add_queue_monitor(
        topo.switch,
        bport,
        Duration::from_micros(100),
        SimTime::from_millis(100),
        SimTime::from_millis(200),
    );
    topo.net.run_until(SimTime::from_millis(220));

    let probes: Vec<_> = topo
        .net
        .records()
        .iter()
        .filter(|r| r.flow.0 >= 100)
        .cloned()
        .collect();
    let fct = FctBreakdown::from_records(&probes);
    let m = &topo.net.monitors()[0];
    let avg_q: f64 =
        m.samples.iter().map(|&(_, _, p)| p as f64).sum::<f64>() / m.samples.len() as f64;
    println!(
        "{label:16}  probe FCT avg {:7.1} us   p99 {:7.1} us   switch queue avg {avg_q:6.1} pkts",
        fct.overall.avg * 1e6,
        fct.overall.p99 * 1e6,
    );
}

fn main() {
    println!("ECN# quickstart: short-flow latency under RTT variation (3x, 70..210 us)\n");
    // Current practice: instantaneous threshold from the 90th-pct RTT
    // (K = 10 Gbps x 200 us = 250 KB).
    run("DCTCP-RED-Tail", || {
        Box::new(DctcpRed::with_threshold(250_000))
    });
    // ECN#: same instantaneous threshold as sojourn time, plus the
    // persistent-queue detector (pst_target 20 us, pst_interval 200 us).
    run("ECN#", || {
        Box::new(EcnSharp::new(EcnSharpConfig::new(
            Duration::from_micros(200),
            Duration::from_micros(20),
            Duration::from_micros(200),
        )))
    });
    println!("\nThe standing queue built by the small-RTT flow under the 250 KB");
    println!("threshold is pure latency for the probes; ECN#'s conservative");
    println!("persistent marking drains it without costing the long flows their");
    println!("throughput (paper sections 2.3 and 3.2).");
}
