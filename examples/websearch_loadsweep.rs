//! Web-search load sweep (a miniature Figure 6): the paper's 8-server
//! testbed with realistic traffic, comparing the four schemes at two loads.
//!
//! Run with:
//! ```text
//! cargo run --release --example websearch_loadsweep
//! ```

use ecn_sharp::experiments::{run_testbed_star, FctScenario, Scheme};
use ecn_sharp::workload::dists;

fn main() {
    println!("Mini Figure 6: 7->1 testbed, web-search workload, 3x RTT variation");
    println!("(500 flows per point; run the fig6 binary for full fidelity)\n");
    println!(
        "{:>5}  {:16} {:>14} {:>13} {:>13} {:>13}",
        "load", "scheme", "overall_avg_us", "short_avg_us", "short_p99_us", "large_avg_us"
    );
    for load in [0.3, 0.6] {
        for scheme in Scheme::testbed_set() {
            let sc = FctScenario::testbed(scheme.clone(), dists::web_search(), load, 500, 99);
            let (fct, stats) = run_testbed_star(&sc);
            println!(
                "{:>4.0}%  {:16} {:>14.1} {:>13.1} {:>13.1} {:>13.1}   (marks {} drops {})",
                load * 100.0,
                scheme.label(),
                fct.overall.avg * 1e6,
                fct.short.map(|s| s.avg * 1e6).unwrap_or(f64::NAN),
                fct.short.map(|s| s.p99 * 1e6).unwrap_or(f64::NAN),
                fct.large.map(|s| s.avg * 1e6).unwrap_or(f64::NAN),
                stats.total_marks(),
                stats.total_drops(),
            );
        }
        println!();
    }
}
